//! Connection-stress bench: the reactor front-end vs the
//! thread-per-connection baseline under a storm of concurrent clients.
//!
//! Both servers run in-process on ephemeral ports with identical engines.
//! Clients are an even mix of the two asynchronous styles: streaming
//! clients (`POST /batch {"stream": true}` over pre-seeded cache hits,
//! reading chunked frames) and long-poll clients parking on one shared
//! *uncached* anchor compile (`GET /job/<id>?wait=1`) that a designated
//! client submits at burst release — so completion wakes half the storm
//! at once. Connections ramp in over ~100 ms and are
//! *held open* until every client is connected (staying under the kernel's
//! fixed listen backlog — a simultaneous SYN storm would measure TCP
//! retransmission timers, not the front-end), then a barrier releases all
//! requests at once: the measured window is a synchronized request burst
//! across every open socket.
//!
//! The paper's service framing (batch compilation behind a shared server)
//! is what makes this matter: a thread-per-connection front-end pays one
//! OS thread per idle waiter, so the reactor is benched at **4×** the
//! baseline's connection count and gated on completing the storm with no
//! sheds, digest-identical results, and no wall-clock regression.

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};
use tetris_engine::EngineConfig;
use tetris_server::{AppState, CompileServer, FrontEnd, ServerConfig};

/// The streaming clients' job specs — small, fast workloads through the
/// server registry, pre-seeded so their frames push immediately; distinct
/// so digests cover more than one artifact.
const SPECS: [&str; 2] = [
    r#"{"workload": "REG3-8-s1", "backend": "maxcancel", "device": "ring-9"}"#,
    r#"{"workload": "REG3-10-s2", "backend": "maxcancel", "device": "ring-11"}"#,
];

/// The anchor job every long-poll client waits on: one *uncached* compile
/// submitted just before burst release, so half the storm parks on a
/// genuinely in-flight job and is woken en masse at completion — the
/// service scenario (many clients awaiting a shared compile) the push
/// model exists for.
const ANCHOR_SPEC: &str = r#"{"workload": "UCC-28", "backend": "tetris", "device": "heavy-hex"}"#;

/// The anchor batch is submitted while every client is still parked at
/// the burst barrier, so after the two pre-seeded jobs its id is
/// deterministically 3 on every fresh server.
const ANCHOR_ID: &str = "3";

/// What one client observed, all in seconds from the synchronized request
/// burst (every socket is already connected when the clock starts).
struct ClientSample {
    /// Burst release to first response byte — dispatch latency with every
    /// other socket demanding service at the same instant.
    first_byte: f64,
    /// Burst release to last expected byte read.
    complete: f64,
    /// `stats_digest` values extracted from the responses.
    digests: Vec<String>,
}

/// One front-end's side of the comparison.
#[derive(Debug, Clone)]
pub struct FrontEndStress {
    /// `"reactor"` or `"blocking"`.
    pub front_end: &'static str,
    /// Concurrent clients driven at it.
    pub connections: usize,
    /// Clients that finished their full exchange.
    pub completed: usize,
    /// Clients that errored (refused, timed out, short read).
    pub errors: usize,
    /// Peak of the server's live-connection gauge during the storm.
    pub peak_connections: u64,
    /// Connections the server shed at its caps (must be 0 — the caps are
    /// sized above the storm).
    pub shed: u64,
    /// Barrier release to last client done.
    pub wall_seconds: f64,
    /// Connect-to-first-byte percentiles (seconds).
    pub first_byte_p50: f64,
    /// 95th percentile of connect-to-first-byte.
    pub first_byte_p95: f64,
    /// 99th percentile of connect-to-first-byte.
    pub first_byte_p99: f64,
    /// Connect-to-completion percentiles (seconds).
    pub complete_p50: f64,
    /// 95th percentile of connect-to-completion.
    pub complete_p95: f64,
    /// 99th percentile of connect-to-completion.
    pub complete_p99: f64,
    /// Every distinct `stats_digest` the clients read.
    pub digests: BTreeSet<String>,
}

/// Reactor-vs-blocking comparison over one storm each.
#[derive(Debug, Clone)]
pub struct ConnStressComparison {
    /// Clients driven at the reactor.
    pub connections: usize,
    /// Clients driven at the thread-per-connection baseline
    /// (`connections / 4` — the scale that architecture is comfortable at).
    pub baseline_connections: usize,
    /// The reactor's side.
    pub reactor: FrontEndStress,
    /// The blocking baseline's side.
    pub blocking: FrontEndStress,
}

impl ConnStressComparison {
    /// How many times more connections the reactor served.
    pub fn connection_ratio(&self) -> f64 {
        if self.baseline_connections == 0 {
            return 0.0;
        }
        self.connections as f64 / self.baseline_connections as f64
    }

    /// Reactor wall over baseline wall — ≤ 1 means the reactor absorbed
    /// its larger storm at least as fast as the baseline absorbed its
    /// smaller one.
    pub fn wall_ratio(&self) -> f64 {
        if self.blocking.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.reactor.wall_seconds / self.blocking.wall_seconds
    }

    /// Whether both front-ends served bit-identical artifacts.
    pub fn digest_match(&self) -> bool {
        !self.reactor.digests.is_empty() && self.reactor.digests == self.blocking.digests
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn connect(addr: &str) -> std::io::Result<TcpStream> {
    // Under a 400-way connect storm individual connects can be refused
    // transiently while the accept queue drains — retry briefly.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_read_timeout(Some(Duration::from_secs(60)))?;
                s.set_write_timeout(Some(Duration::from_secs(60)))?;
                return Ok(s);
            }
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
}

fn send_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    stream.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// Reads status line + headers byte-wise; returns `(status, head, instant
/// of the first byte)` — the first-byte timestamp is the latency anchor.
fn read_head(stream: &mut TcpStream) -> std::io::Result<(u16, String, Instant)> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    let mut first_byte_at = None;
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte)?;
        first_byte_at.get_or_insert_with(Instant::now);
        head.push(byte[0]);
        if head.len() > 64 << 10 {
            return Err(std::io::Error::other("oversized response head"));
        }
    }
    let text = String::from_utf8_lossy(&head).to_string();
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other("bad status line"))?;
    Ok((status, text, first_byte_at.expect("at least one byte")))
}

fn read_body(stream: &mut TcpStream, head: &str) -> std::io::Result<String> {
    let len: usize = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().ok())?
        })
        .ok_or_else(|| std::io::Error::other("missing content-length"))?;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(String::from_utf8_lossy(&body).to_string())
}

fn read_line(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    while !line.ends_with(b"\n") {
        stream.read_exact(&mut byte)?;
        line.push(byte[0]);
    }
    Ok(String::from_utf8_lossy(&line).to_string())
}

/// One chunked frame; `None` on the terminating zero-length chunk.
fn read_chunk(stream: &mut TcpStream) -> std::io::Result<Option<String>> {
    let size_line = read_line(stream)?;
    let size = usize::from_str_radix(size_line.trim(), 16)
        .map_err(|_| std::io::Error::other("bad chunk size"))?;
    if size == 0 {
        read_line(stream)?;
        return Ok(None);
    }
    let mut payload = vec![0u8; size];
    stream.read_exact(&mut payload)?;
    let mut crlf = [0u8; 2];
    stream.read_exact(&mut crlf)?;
    Ok(Some(String::from_utf8_lossy(&payload).to_string()))
}

fn extract(body: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":");
    let rest = body[body.find(&tag)? + tag.len()..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"').to_string())
}

/// Repeats `GET /job/<id>?wait=1` on the socket until the record is done,
/// returning its `stats_digest`. Against the reactor one round trip parks
/// and answers at completion; against the blocking baseline `wait=1`
/// degrades to the immediate record, so this loop *is* the busy-poll that
/// architecture forces on its clients. Tolerates an initial 404 — at burst
/// release the anchor's `POST` races the waiters' first `GET`s.
fn wait_for_digest(stream: &mut TcpStream, id: &str) -> std::io::Result<String> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        send_request(stream, "GET", &format!("/job/{id}?wait=1"), "", true)?;
        let (status, head, _) = read_head(stream)?;
        let result = read_body(stream, &head)?;
        if status == 200 && extract(&result, "status").as_deref() == Some("done") {
            return extract(&result, "stats_digest")
                .ok_or_else(|| std::io::Error::other("done record without digest"));
        }
        if status != 200 && status != 404 {
            return Err(std::io::Error::other(format!("wait status {status}")));
        }
        if Instant::now() > deadline {
            return Err(std::io::Error::other("job did not finish"));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A streaming client: one batch of both specs with `"stream": true`,
/// results read as chunked frames off the (already connected) socket.
/// Against the blocking baseline (which degrades the flag to a plain
/// `job_ids` response) the client falls back to polling each job — the
/// extra round trips are exactly the cost the push model removes.
fn stream_client(stream: &mut TcpStream) -> std::io::Result<ClientSample> {
    let t0 = Instant::now();
    let body = format!(
        "{{ \"jobs\": [{}, {}], \"stream\": true }}",
        SPECS[0], SPECS[1]
    );
    send_request(stream, "POST", "/batch", &body, true)?;
    let (status, head, first_byte_at) = read_head(stream)?;
    if status != 200 {
        return Err(std::io::Error::other(format!("stream status {status}")));
    }
    let chunked = head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked");
    let mut digests = Vec::new();
    if chunked {
        read_chunk(stream)?.ok_or_else(|| std::io::Error::other("missing ack frame"))?;
        while let Some(frame) = read_chunk(stream)? {
            digests.extend(extract(&frame, "stats_digest"));
        }
    } else {
        let ack = read_body(stream, &head)?;
        for id in job_ids(&ack)? {
            digests.push(wait_for_digest(stream, &id)?);
        }
    }
    if digests.len() != 2 {
        return Err(std::io::Error::other("short stream"));
    }
    Ok(ClientSample {
        first_byte: first_byte_at.duration_since(t0).as_secs_f64(),
        complete: t0.elapsed().as_secs_f64(),
        digests,
    })
}

fn job_ids(ack: &str) -> std::io::Result<Vec<String>> {
    // `extract` cuts at the first comma, so bracket-parse the list here.
    let rest = &ack[ack
        .find("\"job_ids\":")
        .ok_or_else(|| std::io::Error::other("missing job_ids"))?..];
    let open = rest
        .find('[')
        .ok_or_else(|| std::io::Error::other("unopened job_ids list"))?;
    let close = rest
        .find(']')
        .ok_or_else(|| std::io::Error::other("unterminated job_ids list"))?;
    Ok(rest[open + 1..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect())
}

/// A long-poll client: one quick `/healthz` round trip (the first-byte
/// responsiveness probe), then a park on the shared anchor job until its
/// completion wakes the socket.
fn longpoll_client(stream: &mut TcpStream) -> std::io::Result<ClientSample> {
    let t0 = Instant::now();
    send_request(stream, "GET", "/healthz", "", true)?;
    let (status, head, first_byte_at) = read_head(stream)?;
    if status != 200 {
        return Err(std::io::Error::other(format!("healthz status {status}")));
    }
    read_body(stream, &head)?;
    let digest = wait_for_digest(stream, ANCHOR_ID)?;
    Ok(ClientSample {
        first_byte: first_byte_at.duration_since(t0).as_secs_f64(),
        complete: t0.elapsed().as_secs_f64(),
        digests: vec![digest],
    })
}

/// A plain blocking request on a fresh socket — for pre-seeding.
fn oneshot(addr: &str, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    let mut stream = connect(addr)?;
    send_request(&mut stream, method, path, body, false)?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other("bad status line"))?;
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, payload))
}

/// Compiles both specs once and waits for completion, so the storm's jobs
/// are all cache hits.
fn preseed(addr: &str) {
    let body = format!("{{ \"jobs\": [{}, {}] }}", SPECS[0], SPECS[1]);
    let (status, _) = oneshot(addr, "POST", "/batch", &body).expect("seed batch");
    assert_eq!(status, 200, "seed batch must be admitted");
    for id in ["1", "2"] {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let (_, job) = oneshot(addr, "GET", &format!("/job/{id}"), "").expect("seed poll");
            if extract(&job, "status").as_deref() == Some("done") {
                break;
            }
            assert!(Instant::now() < deadline, "seed job {id} did not finish");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// Runs one storm of `connections` mixed clients at a freshly started
/// server with the given front-end.
fn run_front_end(front_end: FrontEnd, connections: usize, threads: usize) -> FrontEndStress {
    let label = match front_end {
        FrontEnd::Reactor => "reactor",
        FrontEnd::Blocking => "blocking",
    };
    let server = CompileServer::bind_with(
        "127.0.0.1:0",
        EngineConfig {
            threads,
            cache_capacity: 64,
            cache_dir: None,
            cache_max_bytes: None,
        },
        ServerConfig {
            front_end,
            // Caps sized above the storm: a shed here would mean the
            // front-end lost track of a closed socket.
            max_connections: connections + 64,
            max_inflight: 8 * connections as u64 as usize + 64,
            ..Default::default()
        },
    )
    .expect("bind stress server");
    let addr = server.local_addr().to_string();
    let state: Arc<AppState> = server.serve_background();
    preseed(&addr);

    eprintln!("[connstress] {label}: {connections} concurrent clients…");
    // Every client waits at `burst` twice: once with its socket open (so
    // all sockets coexist) and implicitly via the main thread's wait that
    // releases the synchronized request burst.
    let burst = Arc::new(Barrier::new(connections + 1));
    let samples: Arc<Mutex<Vec<ClientSample>>> = Arc::new(Mutex::new(Vec::new()));
    let errors = Arc::new(AtomicU64::new(0));
    let mut clients = Vec::with_capacity(connections);
    for i in 0..connections {
        let addr = addr.clone();
        let burst = burst.clone();
        let samples = samples.clone();
        let errors = errors.clone();
        clients.push(std::thread::spawn(move || {
            // Ramp the connects over ~100 ms so the kernel's fixed listen
            // backlog is never overflowed — a raw SYN storm measures TCP
            // retransmission timers (1 s+), not the front-end under test.
            std::thread::sleep(Duration::from_micros(250 * i as u64));
            let stream = connect(&addr);
            burst.wait();
            let outcome = stream.and_then(|mut stream| {
                if i % 2 == 0 {
                    stream_client(&mut stream)
                } else {
                    longpoll_client(&mut stream)
                }
            });
            match outcome {
                Ok(sample) => samples.lock().expect("samples lock").push(sample),
                Err(e) => {
                    errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!("[connstress] {label} client {i}: {e}");
                }
            }
        }));
    }

    // Peak-gauge sampler: reads the server's live-connection gauge while
    // the storm runs.
    let done = Arc::new(AtomicBool::new(false));
    let peak = Arc::new(AtomicU64::new(0));
    let sampler = {
        let state = state.clone();
        let done = done.clone();
        let peak = peak.clone();
        std::thread::spawn(move || {
            while !done.load(Ordering::Acquire) {
                peak.fetch_max(state.live_connections(), Ordering::AcqRel);
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    // Submit the anchor while every client is still parked at the
    // barrier: no client request can race it, so its job id is
    // deterministic and its compile is in flight when the burst lands.
    let (status, ack) = oneshot(
        &addr,
        "POST",
        "/batch",
        &format!("{{ \"jobs\": [{ANCHOR_SPEC}] }}"),
    )
    .expect("anchor submit");
    assert_eq!(status, 200, "anchor batch must be admitted: {ack}");
    assert_eq!(
        job_ids(&ack)
            .expect("anchor ack")
            .first()
            .map(String::as_str),
        Some(ANCHOR_ID),
        "anchor id must be deterministic"
    );

    // All sockets are open once every client reaches the barrier; the
    // main thread's arrival releases the burst.
    burst.wait();
    let t0 = Instant::now();
    for c in clients {
        let _ = c.join();
    }
    let wall_seconds = t0.elapsed().as_secs_f64();
    done.store(true, Ordering::Release);
    let _ = sampler.join();

    let samples = Arc::try_unwrap(samples)
        .unwrap_or_else(|arc| Mutex::new(arc.lock().expect("samples lock").drain(..).collect()))
        .into_inner()
        .expect("samples lock");
    let mut first_byte: Vec<f64> = samples.iter().map(|s| s.first_byte).collect();
    let mut complete: Vec<f64> = samples.iter().map(|s| s.complete).collect();
    first_byte.sort_by(|a, b| a.total_cmp(b));
    complete.sort_by(|a, b| a.total_cmp(b));
    let digests: BTreeSet<String> = samples.iter().flat_map(|s| s.digests.clone()).collect();
    let (_, shed_conns, shed_inflight) = state.admission_counters();

    // Drain the server so its sockets and (for the blocking baseline) its
    // handler threads wind down before the next storm starts.
    state.handle().shutdown();

    let stress = FrontEndStress {
        front_end: label,
        connections,
        completed: samples.len(),
        errors: errors.load(Ordering::Relaxed) as usize,
        peak_connections: peak.load(Ordering::Acquire),
        shed: shed_conns + shed_inflight,
        wall_seconds,
        first_byte_p50: percentile(&first_byte, 50.0),
        first_byte_p95: percentile(&first_byte, 95.0),
        first_byte_p99: percentile(&first_byte, 99.0),
        complete_p50: percentile(&complete, 50.0),
        complete_p95: percentile(&complete, 95.0),
        complete_p99: percentile(&complete, 99.0),
        digests,
    };
    eprintln!(
        "[connstress] {label}: {}/{} completed in {:.3}s (peak {} sockets, \
         first-byte p95 {:.1}ms, complete p95 {:.1}ms)",
        stress.completed,
        stress.connections,
        stress.wall_seconds,
        stress.peak_connections,
        1e3 * stress.first_byte_p95,
        1e3 * stress.complete_p95,
    );
    stress
}

/// Runs the full comparison: the reactor at `connections` concurrent
/// clients, the thread-per-connection baseline at a quarter of that.
pub fn run_conn_stress(connections: usize, threads: usize) -> ConnStressComparison {
    let connections = connections.max(4);
    let baseline_connections = (connections / 4).max(1);
    let reactor = run_front_end(FrontEnd::Reactor, connections, threads);
    let blocking = run_front_end(FrontEnd::Blocking, baseline_connections, threads);
    let cmp = ConnStressComparison {
        connections,
        baseline_connections,
        reactor,
        blocking,
    };
    eprintln!(
        "[connstress] reactor {} conns {:.3}s vs blocking {} conns {:.3}s \
         ({:.1}x connections at {:.2}x wall), digests {}",
        cmp.connections,
        cmp.reactor.wall_seconds,
        cmp.baseline_connections,
        cmp.blocking.wall_seconds,
        cmp.connection_ratio(),
        cmp.wall_ratio(),
        if cmp.digest_match() {
            "bit-identical"
        } else {
            "DIVERGED"
        },
    );
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_sane_ranks() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0];
        assert_eq!(percentile(&sorted, 50.0), 6.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 99.0), 11.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn extract_reads_flat_json_fields() {
        let body = r#"{ "job_ids": [7], "status": "done", "stats_digest": "abc123" }"#;
        assert_eq!(extract(body, "stats_digest").as_deref(), Some("abc123"));
        assert_eq!(extract(body, "job_ids").as_deref(), Some("[7]"));
        assert_eq!(extract(body, "missing"), None);
    }

    /// A miniature storm through both front-ends: every client completes,
    /// nothing is shed, digests agree. The full-size storm runs in CI via
    /// `tetris bench-suite --connections`.
    #[test]
    fn small_storm_completes_on_both_front_ends() {
        let cmp = run_conn_stress(8, 2);
        assert_eq!(cmp.reactor.completed, 8, "reactor storm must complete");
        assert_eq!(cmp.reactor.errors, 0);
        assert_eq!(cmp.reactor.shed, 0, "caps are sized above the storm");
        assert_eq!(cmp.blocking.completed, 2);
        assert!(
            cmp.digest_match(),
            "front-ends must serve identical artifacts"
        );
        assert!(
            cmp.reactor.peak_connections >= 2,
            "storm must overlap sockets"
        );
    }
}
