//! # tetris-bench
//!
//! The experiment harness: one binary per table/figure of the paper (run
//! with `cargo run --release -p tetris-bench --bin <exp>`), shared workload
//! caching, and CSV/markdown emitters. Results land in `results/`.
//!
//! Binaries accept an optional `quick` argument that restricts molecule
//! sweeps to the smaller benchmarks (useful on laptops); the default runs
//! the paper's full set.

#![warn(missing_docs)]

pub mod connstress;
pub mod suite;
pub mod table;
pub mod timing;
pub mod workloads;

use std::path::PathBuf;

/// Directory where experiment outputs are written (`results/`, created on
/// demand next to the workspace root or the current directory).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("TETRIS_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Whether the binary was invoked with the `quick` argument (or
/// `TETRIS_QUICK=1`): sweeps then use the reduced benchmark set.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "quick" || a == "--quick")
        || std::env::var("TETRIS_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false)
}
