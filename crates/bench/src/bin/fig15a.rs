//! Fig. 15a: the generic (T|Ket⟩-style) compiler with its native pre+post
//! optimization versus post-route-only optimization.

use tetris_baselines::generic::{compile, OptLevel};
use tetris_bench::table::{human, Table};
use tetris_bench::{results_dir, workloads};
use tetris_pauli::encoder::Encoding;
use tetris_pauli::molecules::Molecule;
use tetris_topology::CouplingGraph;

fn main() {
    let graph = CouplingGraph::heavy_hex_65();
    let mut t = Table::new(&["Bench.", "TKet+TKetO2", "TKet+QiskitO3"]);
    for m in Molecule::SMALL {
        let h = workloads::molecule(m, Encoding::JordanWigner);
        eprintln!("[fig15a] {m}…");
        let native = compile(&h, &graph, OptLevel::Native);
        let post = compile(&h, &graph, OptLevel::PostRouteOnly);
        t.row(vec![
            m.name().into(),
            human(native.stats.total_cnots()),
            human(post.stats.total_cnots()),
        ]);
    }
    t.emit(&results_dir().join("fig15a.csv"));
}
