//! Table II: Paulihedral vs Tetris on the IBM heavy-hex backend — total
//! gates, CNOT gates, depth and duration, for the JW and BK encoders plus
//! the synthetic UCC benchmarks.

use tetris_baselines::paulihedral;
use tetris_bench::table::{human, improvement, Table};
use tetris_bench::{quick_mode, results_dir, workloads};
use tetris_core::{TetrisCompiler, TetrisConfig};
use tetris_pauli::encoder::Encoding;
use tetris_pauli::Hamiltonian;
use tetris_topology::CouplingGraph;

fn run_row(t: &mut Table, section: &str, name: &str, h: &Hamiltonian, graph: &CouplingGraph) {
    eprintln!("[table2] {section}/{name}…");
    let ph = paulihedral::compile(h, graph, true);
    let tetris = TetrisCompiler::new(TetrisConfig::default()).compile(h, graph);
    let (pm, tm) = (ph.stats.metrics, tetris.stats.metrics);
    t.row(vec![
        section.into(),
        name.into(),
        human(pm.total_gates),
        human(tm.total_gates),
        improvement(pm.total_gates, tm.total_gates),
        human(pm.cnot_count),
        human(tm.cnot_count),
        improvement(pm.cnot_count, tm.cnot_count),
        human(pm.depth),
        human(tm.depth),
        improvement(pm.depth, tm.depth),
        human(pm.duration as usize),
        human(tm.duration as usize),
        improvement(pm.duration as usize, tm.duration as usize),
    ]);
}

fn main() {
    let quick = quick_mode();
    let graph = CouplingGraph::heavy_hex_65();
    let mut t = Table::new(&[
        "Encoder", "Bench.", "Total PH", "Total Tetris", "Improv.", "CNOT PH", "CNOT Tetris",
        "Improv.", "Depth PH", "Depth Tetris", "Improv.", "Dur PH", "Dur Tetris", "Improv.",
    ]);
    for enc in [Encoding::JordanWigner, Encoding::BravyiKitaev] {
        let section = match enc {
            Encoding::JordanWigner => "Jordan-Wigner",
            Encoding::BravyiKitaev => "Bravyi-Kitaev",
        };
        for m in workloads::molecule_set(quick) {
            let h = workloads::molecule(m, enc);
            run_row(&mut t, section, m.name(), &h, &graph);
        }
    }
    for h in workloads::synthetic_set(quick) {
        let name = h.name.replace("-JW", "");
        run_row(&mut t, "Synthetic", &name, &h, &graph);
    }
    t.emit(&results_dir().join("table2.csv"));
}
