//! Table II: Paulihedral vs Tetris on the IBM heavy-hex backend — total
//! gates, CNOT gates, depth and duration, for the JW and BK encoders plus
//! the synthetic UCC benchmarks.
//!
//! Runs through the batch-compilation engine: every (workload × compiler)
//! pair is one job, fanned out over the worker pool.

use std::sync::Arc;
use tetris_bench::table::{human, improvement, Table};
use tetris_bench::{quick_mode, results_dir, workloads};
use tetris_core::TetrisConfig;
use tetris_engine::{Backend, CompileJob, Engine, JobResult};
use tetris_pauli::encoder::Encoding;
use tetris_topology::CouplingGraph;

fn main() {
    let quick = quick_mode();
    let graph = Arc::new(CouplingGraph::heavy_hex_65());

    // (section, name, hamiltonian) rows in table order.
    let mut rows = Vec::new();
    for enc in [Encoding::JordanWigner, Encoding::BravyiKitaev] {
        let section = match enc {
            Encoding::JordanWigner => "Jordan-Wigner",
            Encoding::BravyiKitaev => "Bravyi-Kitaev",
        };
        for m in workloads::molecule_set(quick) {
            rows.push((
                section,
                m.name().to_string(),
                Arc::new(workloads::molecule(m, enc)),
            ));
        }
    }
    for h in workloads::synthetic_set(quick) {
        let name = h.name.replace("-JW", "");
        rows.push(("Synthetic", name, Arc::new(h)));
    }

    // Two jobs per row: Paulihedral then Tetris+lookahead.
    let jobs: Vec<CompileJob> = rows
        .iter()
        .flat_map(|(_, name, ham)| {
            [
                Backend::Paulihedral {
                    post_optimize: true,
                },
                Backend::Tetris(TetrisConfig::default()),
            ]
            .into_iter()
            .map(|b| CompileJob::new(name.clone(), b, ham.clone(), graph.clone()))
        })
        .collect();

    let engine = Engine::with_default_config();
    eprintln!(
        "[table2] compiling {} points on {} workers…",
        jobs.len(),
        engine.threads()
    );
    let results = engine.compile_batch(jobs);

    let mut t = Table::new(&[
        "Encoder",
        "Bench.",
        "Total PH",
        "Total Tetris",
        "Improv.",
        "CNOT PH",
        "CNOT Tetris",
        "Improv.",
        "Depth PH",
        "Depth Tetris",
        "Improv.",
        "Dur PH",
        "Dur Tetris",
        "Improv.",
    ]);
    for ((section, name, _), pair) in rows.iter().zip(results.chunks(2)) {
        let [ph, tetris]: &[JobResult; 2] = pair.try_into().expect("two jobs per row");
        let (pm, tm) = (ph.output.stats.metrics, tetris.output.stats.metrics);
        t.row(vec![
            (*section).into(),
            name.clone(),
            human(pm.total_gates),
            human(tm.total_gates),
            improvement(pm.total_gates, tm.total_gates),
            human(pm.cnot_count),
            human(tm.cnot_count),
            improvement(pm.cnot_count, tm.cnot_count),
            human(pm.depth),
            human(tm.depth),
            improvement(pm.depth, tm.depth),
            human(pm.duration as usize),
            human(tm.duration as usize),
            improvement(pm.duration as usize, tm.duration as usize),
        ]);
    }
    t.emit(&results_dir().join("table2.csv"));
}
