//! Fig. 15b: CNOT breakdown (logical vs SWAP-induced) for PCOAST,
//! Paulihedral and Tetris.

use tetris_baselines::{paulihedral, pcoast_like};
use tetris_bench::table::{human, Table};
use tetris_bench::{results_dir, workloads};
use tetris_core::{TetrisCompiler, TetrisConfig};
use tetris_pauli::encoder::Encoding;
use tetris_pauli::molecules::Molecule;
use tetris_topology::CouplingGraph;

fn main() {
    let graph = CouplingGraph::heavy_hex_65();
    let mut t = Table::new(&[
        "Bench.",
        "PCOAST CNOTs",
        "PH CNOTs",
        "Tetris CNOTs",
        "PCOAST Swap-CNOTs",
        "PH Swap-CNOTs",
        "Tetris Swap-CNOTs",
    ]);
    for m in Molecule::SMALL {
        let h = workloads::molecule(m, Encoding::JordanWigner);
        eprintln!("[fig15b] {m}…");
        let pcoast = pcoast_like::compile(&h, &graph);
        let ph = paulihedral::compile(&h, &graph, true);
        let tetris = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &graph);
        t.row(vec![
            m.name().into(),
            human(pcoast.stats.logical_cnots()),
            human(ph.stats.logical_cnots()),
            human(tetris.stats.logical_cnots()),
            human(pcoast.stats.swap_cnots()),
            human(ph.stats.swap_cnots()),
            human(tetris.stats.swap_cnots()),
        ]);
    }
    t.emit(&results_dir().join("fig15b.csv"));
}
