//! Fig. 14: CNOT gate count — T|Ket⟩ vs PCOAST vs Paulihedral vs Tetris vs
//! Tetris+lookahead on the four smaller molecules (JW, heavy-hex).
//!
//! Runs through the batch-compilation engine: all (molecule × compiler)
//! points compile concurrently on the worker pool, and repeated points
//! (e.g. a re-run within one process) are served from the result cache.

use std::sync::Arc;
use tetris_bench::table::{human, Table};
use tetris_bench::{results_dir, workloads};
use tetris_engine::{Backend, CompileJob, Engine};
use tetris_pauli::encoder::Encoding;
use tetris_pauli::molecules::Molecule;
use tetris_topology::CouplingGraph;

fn main() {
    let graph = Arc::new(CouplingGraph::heavy_hex_65());
    let sweep = Backend::evaluation_sweep();

    let jobs: Vec<CompileJob> = Molecule::SMALL
        .into_iter()
        .flat_map(|m| {
            let ham = Arc::new(workloads::molecule(m, Encoding::JordanWigner));
            let graph = graph.clone();
            sweep
                .clone()
                .into_iter()
                .map(move |b| CompileJob::new(m.name(), b, ham.clone(), graph.clone()))
        })
        .collect();

    let engine = Engine::with_default_config();
    eprintln!(
        "[fig14] compiling {} points on {} workers…",
        jobs.len(),
        engine.threads()
    );
    let results = engine.compile_batch(jobs);

    let mut t = Table::new(&[
        "Bench.",
        "TKet",
        "PCOAST",
        "PH",
        "Tetris",
        "Tetris+lookahead",
    ]);
    // Results arrive in submission order: molecule-major, sweep-minor.
    for row in results.chunks(sweep.len()) {
        let mut cells = vec![row[0].name.clone()];
        cells.extend(row.iter().map(|r| human(r.output.stats.total_cnots())));
        t.row(cells);
    }
    t.emit(&results_dir().join("fig14.csv"));
}
