//! Fig. 14: CNOT gate count — T|Ket⟩ vs PCOAST vs Paulihedral vs Tetris vs
//! Tetris+lookahead on the four smaller molecules (JW, heavy-hex).

use tetris_baselines::{generic, paulihedral, pcoast_like};
use tetris_bench::table::{human, Table};
use tetris_bench::{results_dir, workloads};
use tetris_core::{TetrisCompiler, TetrisConfig};
use tetris_pauli::encoder::Encoding;
use tetris_pauli::molecules::Molecule;
use tetris_topology::CouplingGraph;

fn main() {
    let graph = CouplingGraph::heavy_hex_65();
    let mut t = Table::new(&[
        "Bench.", "TKet", "PCOAST", "PH", "Tetris", "Tetris+lookahead",
    ]);
    for m in Molecule::SMALL {
        let h = workloads::molecule(m, Encoding::JordanWigner);
        eprintln!("[fig14] {m}: tket…");
        let tket = generic::compile(&h, &graph, generic::OptLevel::Native);
        eprintln!("[fig14] {m}: pcoast…");
        let pcoast = pcoast_like::compile(&h, &graph);
        eprintln!("[fig14] {m}: ph…");
        let ph = paulihedral::compile(&h, &graph, true);
        eprintln!("[fig14] {m}: tetris…");
        let tetris = TetrisCompiler::new(TetrisConfig::without_lookahead()).compile(&h, &graph);
        let tetris_la = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &graph);
        t.row(vec![
            m.name().into(),
            human(tket.stats.total_cnots()),
            human(pcoast.stats.total_cnots()),
            human(ph.stats.total_cnots()),
            human(tetris.stats.total_cnots()),
            human(tetris_la.stats.total_cnots()),
        ]);
    }
    t.emit(&results_dir().join("fig14.csv"));
}
