//! Table I: benchmark characteristics — #qubits, #Pauli strings, logical
//! #CNOT and #1q of the naive synthesis, for molecules (JW), synthetic
//! UCCSD and QAOA graphs.
//!
//! The workload list comes from the engine suite
//! ([`tetris_bench::suite::suite_workloads`]), so the rows here are exactly
//! the workloads `tetris bench-suite` compiles.

use tetris_bench::suite::suite_workloads;
use tetris_bench::table::Table;
use tetris_bench::{quick_mode, results_dir};
use tetris_pauli::Hamiltonian;

fn one_q_count(h: &Hamiltonian) -> usize {
    use tetris_pauli::PauliOp;
    // Basis gates (2 per X, 4 per Y) + one Rz per string — the logical
    // single-qubit gate count of the tree synthesis rule.
    h.terms()
        .map(|t| {
            1 + t
                .string
                .iter_ops()
                .map(|op| match op {
                    PauliOp::X => 2,
                    PauliOp::Y => 4,
                    _ => 0,
                })
                .sum::<usize>()
        })
        .sum()
}

fn section(name: &str, h: &Hamiltonian) -> &'static str {
    if name.starts_with("UCC-") {
        "UCCSD"
    } else if tetris_bench::suite::is_qaoa_shaped(h) {
        "QAOA"
    } else {
        "Molecules"
    }
}

fn main() {
    let quick = quick_mode();
    let mut t = Table::new(&["Type", "Bench.", "#qubits", "#Pauli", "#CNOT", "#1Q"]);
    for (name, h) in suite_workloads(quick) {
        let kind = section(&name, &h);
        // QAOA circuits additionally carry one initial H and one RX-mixer
        // gate per qubit (2n single-qubit gates), which the paper's Table I
        // counts; the cost layer itself contributes one Rz per edge.
        let one_q = match kind {
            "QAOA" => one_q_count(&h) + 2 * h.n_qubits,
            _ => one_q_count(&h),
        };
        t.row(vec![
            kind.into(),
            name.replace("-JW", ""),
            h.n_qubits.to_string(),
            h.pauli_string_count().to_string(),
            h.naive_cnot_count().to_string(),
            one_q.to_string(),
        ]);
    }
    t.emit(&results_dir().join("table1.csv"));
}
