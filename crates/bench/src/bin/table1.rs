//! Table I: benchmark characteristics — #qubits, #Pauli strings, logical
//! #CNOT and #1q of the naive synthesis, for molecules (JW), synthetic
//! UCCSD and QAOA graphs.

use tetris_bench::table::Table;
use tetris_bench::{quick_mode, results_dir, workloads};
use tetris_pauli::encoder::Encoding;
use tetris_pauli::Hamiltonian;

fn one_q_count(h: &Hamiltonian) -> usize {
    use tetris_pauli::PauliOp;
    // Basis gates (2 per X, 4 per Y) + one Rz per string — the logical
    // single-qubit gate count of the tree synthesis rule.
    h.terms()
        .map(|t| {
            1 + t
                .string
                .ops()
                .iter()
                .map(|op| match op {
                    PauliOp::X => 2,
                    PauliOp::Y => 4,
                    _ => 0,
                })
                .sum::<usize>()
        })
        .sum()
}

fn main() {
    let quick = quick_mode();
    let mut t = Table::new(&["Type", "Bench.", "#qubits", "#Pauli", "#CNOT", "#1Q"]);
    for m in workloads::molecule_set(quick) {
        let h = workloads::molecule(m, Encoding::JordanWigner);
        t.row(vec![
            "Molecules".into(),
            m.name().into(),
            h.n_qubits.to_string(),
            h.pauli_string_count().to_string(),
            h.naive_cnot_count().to_string(),
            one_q_count(&h).to_string(),
        ]);
    }
    for h in workloads::synthetic_set(quick) {
        t.row(vec![
            "UCCSD".into(),
            h.name.replace("-JW", ""),
            h.n_qubits.to_string(),
            h.pauli_string_count().to_string(),
            h.naive_cnot_count().to_string(),
            one_q_count(&h).to_string(),
        ]);
    }
    for h in workloads::qaoa_set(7) {
        // QAOA circuits additionally carry one initial H and one RX-mixer
        // gate per qubit (2n single-qubit gates), which the paper's Table I
        // counts; the cost layer itself contributes one Rz per edge.
        t.row(vec![
            "QAOA".into(),
            h.name.clone(),
            h.n_qubits.to_string(),
            h.pauli_string_count().to_string(),
            h.naive_cnot_count().to_string(),
            (one_q_count(&h) + 2 * h.n_qubits).to_string(),
        ]);
    }
    t.emit(&results_dir().join("table1.csv"));
}
