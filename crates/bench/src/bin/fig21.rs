//! Fig. 21: PH vs Tetris on the Google-Sycamore-style backend (JW):
//! depth and total CNOT with the SWAP-induced breakdown.

use tetris_baselines::paulihedral;
use tetris_bench::table::{human, improvement, Table};
use tetris_bench::{quick_mode, results_dir, workloads};
use tetris_core::{TetrisCompiler, TetrisConfig};
use tetris_pauli::encoder::Encoding;
use tetris_topology::CouplingGraph;

fn main() {
    let quick = quick_mode();
    let graph = CouplingGraph::sycamore_64();
    let mut t = Table::new(&[
        "Bench.",
        "PH depth",
        "Tetris depth",
        "Improv.",
        "PH CNOT",
        "Tetris CNOT",
        "Improv.",
        "PH_S",
        "Tetris_S",
    ]);
    for m in workloads::molecule_set(quick) {
        let h = workloads::molecule(m, Encoding::JordanWigner);
        eprintln!("[fig21] {m}…");
        let ph = paulihedral::compile(&h, &graph, true);
        let tetris = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &graph);
        t.row(vec![
            m.name().into(),
            human(ph.stats.metrics.depth),
            human(tetris.stats.metrics.depth),
            improvement(ph.stats.metrics.depth, tetris.stats.metrics.depth),
            human(ph.stats.total_cnots()),
            human(tetris.stats.total_cnots()),
            improvement(ph.stats.total_cnots(), tetris.stats.total_cnots()),
            human(ph.stats.swap_cnots()),
            human(tetris.stats.swap_cnots()),
        ]);
    }
    t.emit(&results_dir().join("fig21.csv"));
}
