//! Fig. 19: lookahead-K sensitivity — total CNOT and depth as the block
//! scheduler's window K sweeps 1..22 (JW, heavy-hex).

use tetris_bench::table::Table;
use tetris_bench::{quick_mode, results_dir, workloads};
use tetris_core::{TetrisCompiler, TetrisConfig};
use tetris_pauli::encoder::Encoding;
use tetris_topology::CouplingGraph;

fn main() {
    let quick = quick_mode();
    let graph = CouplingGraph::heavy_hex_65();
    let ks: Vec<usize> = (1..=22).step_by(3).collect();
    let mut t = Table::new(&["Bench.", "K", "CNOTs", "Depth"]);
    for m in workloads::molecule_set(quick) {
        let h = workloads::molecule(m, Encoding::JordanWigner);
        for &k in &ks {
            eprintln!("[fig19] {m} K={k}…");
            let r =
                TetrisCompiler::new(TetrisConfig::default().with_lookahead(k)).compile(&h, &graph);
            t.row(vec![
                m.name().into(),
                k.to_string(),
                r.stats.total_cnots().to_string(),
                r.stats.metrics.depth.to_string(),
            ]);
        }
    }
    t.emit(&results_dir().join("fig19.csv"));
}
