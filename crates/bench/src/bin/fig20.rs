//! Fig. 20: SWAP-weight sensitivity — SWAP count and logical CNOT count as
//! the score weight w sweeps 0.1..100, on heavy-hex (Ithaca) and Sycamore.

use tetris_bench::table::Table;
use tetris_bench::{results_dir, workloads};
use tetris_core::{TetrisCompiler, TetrisConfig};
use tetris_pauli::encoder::Encoding;
use tetris_pauli::molecules::Molecule;
use tetris_topology::CouplingGraph;

fn main() {
    let weights = [0.1, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 10.0, 100.0];
    let backends = [CouplingGraph::heavy_hex_65(), CouplingGraph::sycamore_64()];
    let molecules = [Molecule::BeH2, Molecule::MgH2, Molecule::CO2];
    let mut t = Table::new(&["Bench.", "Backend", "w", "Swaps", "Logical CNOTs"]);
    for m in molecules {
        let h = workloads::molecule(m, Encoding::JordanWigner);
        for g in &backends {
            for &w in &weights {
                eprintln!("[fig20] {m} {} w={w}…", g.name());
                let r =
                    TetrisCompiler::new(TetrisConfig::default().with_swap_weight(w)).compile(&h, g);
                t.row(vec![
                    m.name().into(),
                    g.name().into(),
                    w.to_string(),
                    r.stats.swaps_final.to_string(),
                    r.stats.logical_cnots().to_string(),
                ]);
            }
        }
    }
    t.emit(&results_dir().join("fig20.csv"));
}
