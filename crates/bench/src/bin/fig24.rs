//! Fig. 24: scalability — compilation latency of PH and Tetris, with and
//! without the post-synthesis peephole pass (the paper's Qiskit-O3 split).

use std::time::Instant;
use tetris_baselines::paulihedral;
use tetris_bench::table::Table;
use tetris_bench::{quick_mode, results_dir, workloads};
use tetris_core::{TetrisCompiler, TetrisConfig};
use tetris_pauli::encoder::Encoding;
use tetris_topology::CouplingGraph;

fn main() {
    let quick = quick_mode();
    let graph = CouplingGraph::heavy_hex_65();
    let mut t = Table::new(&[
        "Bench.",
        "PH (s)",
        "Tetris (s)",
        "PH+O3 (s)",
        "Tetris+O3 (s)",
    ]);
    for m in workloads::molecule_set(quick) {
        let h = workloads::molecule(m, Encoding::JordanWigner);
        eprintln!("[fig24] {m}…");
        let t_ph_raw = {
            let t0 = Instant::now();
            let _ = paulihedral::compile(&h, &graph, false);
            t0.elapsed().as_secs_f64()
        };
        let t_ph_opt = {
            let t0 = Instant::now();
            let _ = paulihedral::compile(&h, &graph, true);
            t0.elapsed().as_secs_f64()
        };
        let cfg_raw = TetrisConfig {
            post_optimize: false,
            ..Default::default()
        };
        let t_tet_raw = {
            let t0 = Instant::now();
            let _ = TetrisCompiler::new(cfg_raw).compile(&h, &graph);
            t0.elapsed().as_secs_f64()
        };
        let t_tet_opt = {
            let t0 = Instant::now();
            let _ = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &graph);
            t0.elapsed().as_secs_f64()
        };
        t.row(vec![
            m.name().into(),
            format!("{t_ph_raw:.3}"),
            format!("{t_tet_raw:.3}"),
            format!("{t_ph_opt:.3}"),
            format!("{t_tet_opt:.3}"),
        ]);
    }
    t.emit(&results_dir().join("fig24.csv"));
}
