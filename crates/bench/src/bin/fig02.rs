//! Fig. 2: CNOT gate cancellation opportunities — Paulihedral's achieved
//! ratio vs the `max_cancel` upper bound, for JW and BK encoders.

use tetris_baselines::{max_cancel, paulihedral};
use tetris_bench::table::Table;
use tetris_bench::{quick_mode, results_dir, workloads};
use tetris_pauli::encoder::Encoding;
use tetris_topology::CouplingGraph;

fn main() {
    let quick = quick_mode();
    let graph = CouplingGraph::heavy_hex_65();
    let mut t = Table::new(&["Encoder", "Bench.", "Paulihedral", "max_cancel"]);
    for enc in [Encoding::JordanWigner, Encoding::BravyiKitaev] {
        for m in workloads::molecule_set(quick) {
            let h = workloads::molecule(m, enc);
            eprintln!("[fig02] {m} {enc}…");
            let ph = paulihedral::compile(&h, &graph, true).stats.cancel_ratio();
            let max = max_cancel::max_cancel_ratio(&h);
            t.row(vec![
                enc.short_name().into(),
                m.name().into(),
                format!("{:.1}%", 100.0 * ph),
                format!("{:.1}%", 100.0 * max),
            ]);
        }
    }
    t.emit(&results_dir().join("fig02.csv"));
}
