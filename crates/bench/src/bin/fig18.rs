//! Fig. 18: total CNOT breakdown (logical vs SWAP-induced) for PH, Tetris
//! and max_cancel on JW, BK and the synthetic UCC set.

use tetris_baselines::{max_cancel, paulihedral};
use tetris_bench::table::{human, Table};
use tetris_bench::{quick_mode, results_dir, workloads};
use tetris_core::{TetrisCompiler, TetrisConfig};
use tetris_pauli::encoder::Encoding;
use tetris_pauli::Hamiltonian;
use tetris_topology::CouplingGraph;

fn run_row(t: &mut Table, section: &str, name: &str, h: &Hamiltonian, graph: &CouplingGraph) {
    eprintln!("[fig18] {section}/{name}…");
    let ph = paulihedral::compile(h, graph, true);
    let tetris = TetrisCompiler::new(TetrisConfig::default()).compile(h, graph);
    let max = max_cancel::compile(h, graph);
    let improv = if ph.stats.total_cnots() > 0 {
        format!(
            "{:+.1}%",
            (tetris.stats.total_cnots() as f64 - ph.stats.total_cnots() as f64)
                / ph.stats.total_cnots() as f64
                * 100.0
        )
    } else {
        "n/a".into()
    };
    t.row(vec![
        section.into(),
        name.into(),
        human(ph.stats.total_cnots()),
        human(tetris.stats.total_cnots()),
        human(max.stats.total_cnots()),
        human(ph.stats.swap_cnots()),
        human(tetris.stats.swap_cnots()),
        human(max.stats.swap_cnots()),
        improv,
    ]);
}

fn main() {
    let quick = quick_mode();
    let graph = CouplingGraph::heavy_hex_65();
    let mut t = Table::new(&[
        "Set", "Bench.", "PH", "Tetris", "max", "PH_S", "Tetris_S", "max_S", "Improv.",
    ]);
    for enc in [Encoding::JordanWigner, Encoding::BravyiKitaev] {
        for m in workloads::molecule_set(quick) {
            let h = workloads::molecule(m, enc);
            run_row(&mut t, enc.short_name(), m.name(), &h, &graph);
        }
    }
    for h in workloads::synthetic_set(quick) {
        let name = h.name.replace("-JW", "");
        run_row(&mut t, "Synthetic", &name, &h, &graph);
    }
    t.emit(&results_dir().join("fig18.csv"));
}
