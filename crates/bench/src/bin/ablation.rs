//! Ablation study over the design choices DESIGN.md calls out: tree-shape
//! bias (chain vs balanced), fast bridging, lookahead scheduling, and
//! intra-block string ordering — each toggled independently on BeH2 (JW,
//! heavy-hex).

use tetris_bench::table::Table;
use tetris_bench::{results_dir, workloads};
use tetris_core::{InitialLayout, SchedulerKind, TetrisCompiler, TetrisConfig, TreeBias};
use tetris_pauli::encoder::Encoding;
use tetris_pauli::molecules::Molecule;
use tetris_topology::CouplingGraph;

fn main() {
    let graph = CouplingGraph::heavy_hex_65();
    let h = workloads::molecule(Molecule::BeH2, Encoding::JordanWigner);
    let mut t = Table::new(&["Variant", "CNOTs", "Swaps", "Depth", "Cancel %"]);

    let variants: Vec<(&str, TetrisConfig)> = vec![
        ("full (paper defaults)", TetrisConfig::default()),
        (
            "balanced trees",
            TetrisConfig::default().with_tree_bias(TreeBias::Balanced),
        ),
        ("no bridging", TetrisConfig::default().with_bridging(false)),
        (
            "no lookahead (input order)",
            TetrisConfig {
                scheduler: SchedulerKind::InputOrder,
                ..TetrisConfig::default()
            },
        ),
        (
            "w = 0.1 (cancel-greedy)",
            TetrisConfig::default().with_swap_weight(0.1),
        ),
        (
            "w = 100 (swap-averse)",
            TetrisConfig::default().with_swap_weight(100.0),
        ),
        (
            "packed initial layout",
            TetrisConfig::default().with_initial_layout(InitialLayout::Packed),
        ),
    ];
    for (name, cfg) in variants {
        eprintln!("[ablation] {name}…");
        let r = TetrisCompiler::new(cfg).compile(&h, &graph);
        t.row(vec![
            name.into(),
            r.stats.total_cnots().to_string(),
            r.stats.swaps_final.to_string(),
            r.stats.metrics.depth.to_string(),
            format!("{:.1}%", 100.0 * r.stats.cancel_ratio()),
        ]);
    }
    t.emit(&results_dir().join("ablation.csv"));
}
