//! Fig. 23: QAOA benchmarks — gate count and depth of 2QAN and Tetris
//! normalized to Paulihedral, averaged over 5 random graph instances.

use tetris_baselines::{paulihedral, qaoa_2qan};
use tetris_bench::results_dir;
use tetris_bench::table::Table;
use tetris_core::{TetrisCompiler, TetrisConfig};
use tetris_pauli::qaoa::{maxcut_hamiltonian, Graph};
use tetris_topology::CouplingGraph;

fn main() {
    let graph = CouplingGraph::heavy_hex_65();
    let mut t = Table::new(&[
        "Bench.",
        "2QAN/PH gates",
        "Tetris/PH gates",
        "2QAN/PH depth",
        "Tetris/PH depth",
    ]);
    type GraphGen = Box<dyn Fn(u64) -> Graph>;
    let cases: Vec<(String, GraphGen)> = vec![
        ("ran16".into(), Box::new(|s| Graph::random_gnm(16, 25, s))),
        ("ran18".into(), Box::new(|s| Graph::random_gnm(18, 31, s))),
        ("ran20".into(), Box::new(|s| Graph::random_gnm(20, 40, s))),
        (
            "reg16".into(),
            Box::new(|s| Graph::random_regular(16, 3, s)),
        ),
        (
            "reg18".into(),
            Box::new(|s| Graph::random_regular(18, 3, s)),
        ),
        (
            "reg20".into(),
            Box::new(|s| Graph::random_regular(20, 3, s)),
        ),
    ];
    for (name, gen) in cases {
        let mut ratios = [0.0f64; 4];
        let seeds = 5u64;
        for seed in 0..seeds {
            eprintln!("[fig23] {name} seed {seed}…");
            let g = gen(seed * 131 + 7);
            let h = maxcut_hamiltonian(&g, &name);
            let ph = paulihedral::compile(&h, &graph, true);
            let two_qan = qaoa_2qan::compile(&h, &graph, seed);
            let tetris = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &graph);
            ratios[0] += two_qan.stats.total_cnots() as f64 / ph.stats.total_cnots() as f64;
            ratios[1] += tetris.stats.total_cnots() as f64 / ph.stats.total_cnots() as f64;
            ratios[2] += two_qan.stats.metrics.depth as f64 / ph.stats.metrics.depth as f64;
            ratios[3] += tetris.stats.metrics.depth as f64 / ph.stats.metrics.depth as f64;
        }
        for r in &mut ratios {
            *r /= seeds as f64;
        }
        t.row(vec![
            name,
            format!("{:.3}", ratios[0]),
            format!("{:.3}", ratios[1]),
            format!("{:.3}", ratios[2]),
            format!("{:.3}", ratios[3]),
        ]);
    }
    t.emit(&results_dir().join("fig23.csv"));
}
