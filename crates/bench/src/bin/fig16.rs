//! Fig. 16: Paulihedral and Tetris with and without the post-synthesis
//! peephole pass (the paper's "with / without Qiskit O3").

use tetris_baselines::paulihedral;
use tetris_bench::table::{human, Table};
use tetris_bench::{quick_mode, results_dir, workloads};
use tetris_core::{TetrisCompiler, TetrisConfig};
use tetris_pauli::encoder::Encoding;
use tetris_topology::CouplingGraph;

fn main() {
    let quick = quick_mode();
    let graph = CouplingGraph::heavy_hex_65();
    let mut t = Table::new(&[
        "Bench.",
        "PH raw CNOT",
        "Tetris raw CNOT",
        "PH+O3 CNOT",
        "Tetris+O3 CNOT",
        "PH raw depth",
        "Tetris raw depth",
        "PH+O3 depth",
        "Tetris+O3 depth",
    ]);
    for m in workloads::molecule_set(quick) {
        let h = workloads::molecule(m, Encoding::JordanWigner);
        eprintln!("[fig16] {m}…");
        let ph_raw = paulihedral::compile(&h, &graph, false);
        let ph_opt = paulihedral::compile(&h, &graph, true);
        let cfg_raw = TetrisConfig {
            post_optimize: false,
            ..Default::default()
        };
        let tet_raw = TetrisCompiler::new(cfg_raw).compile(&h, &graph);
        let tet_opt = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &graph);
        t.row(vec![
            m.name().into(),
            human(ph_raw.stats.total_cnots()),
            human(tet_raw.stats.total_cnots()),
            human(ph_opt.stats.total_cnots()),
            human(tet_opt.stats.total_cnots()),
            human(ph_raw.stats.metrics.depth),
            human(tet_raw.stats.metrics.depth),
            human(ph_opt.stats.metrics.depth),
            human(tet_opt.stats.metrics.depth),
        ]);
    }
    t.emit(&results_dir().join("fig16.csv"));
}
