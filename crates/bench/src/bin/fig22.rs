//! Fig. 22: noise-simulation fidelity vs number of Pauli blocks (LiH and
//! CO2, randomly sampled sub-circuits, depolarizing p2 = 1e-3, p1 = 1e-4),
//! reported as min/mean/max over samples like the paper's box plots.

use tetris_baselines::paulihedral;
use tetris_bench::table::Table;
use tetris_bench::{results_dir, workloads};
use tetris_core::{TetrisCompiler, TetrisConfig};
use tetris_pauli::encoder::Encoding;
use tetris_pauli::molecules::Molecule;
use tetris_pauli::rng::rngs::StdRng;
use tetris_pauli::rng::{Rng, SeedableRng};
use tetris_pauli::Hamiltonian;
use tetris_sim::NoiseModel;
use tetris_topology::CouplingGraph;

/// Random sample of `k` blocks from a Hamiltonian.
fn sample_blocks(h: &Hamiltonian, k: usize, rng: &mut StdRng) -> Hamiltonian {
    let mut idx: Vec<usize> = (0..h.blocks.len()).collect();
    for i in (1..idx.len()).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx.truncate(k);
    Hamiltonian::new(
        h.n_qubits,
        idx.into_iter().map(|i| h.blocks[i].clone()).collect(),
        format!("{}-sample{k}", h.name),
    )
}

fn main() {
    let graph = CouplingGraph::heavy_hex_65();
    let noise = NoiseModel::default();
    let mut t = Table::new(&[
        "Bench.",
        "#Blocks",
        "PH min",
        "PH mean",
        "PH max",
        "Tetris min",
        "Tetris mean",
        "Tetris max",
    ]);
    for (m, n_samples) in [(Molecule::LiH, 20usize), (Molecule::CO2, 5)] {
        let h = workloads::molecule(m, Encoding::JordanWigner);
        let mut rng = StdRng::seed_from_u64(0xf1de ^ h.n_qubits as u64);
        for k in (2..=10).step_by(2) {
            eprintln!("[fig22] {m} k={k}…");
            let mut ph_samples = Vec::new();
            let mut tetris_samples = Vec::new();
            for _ in 0..n_samples {
                let sub = sample_blocks(&h, k, &mut rng);
                let ph = paulihedral::compile(&sub, &graph, true);
                let tetris = TetrisCompiler::new(TetrisConfig::default()).compile(&sub, &graph);
                // Analytic RB fidelity of circuit ∘ inverse; the MC
                // estimator is exercised in the sim tests — here the
                // per-sample spread comes from the random block choice,
                // matching the paper's protocol.
                ph_samples.push(noise.rb_fidelity(&ph.circuit));
                tetris_samples.push(noise.rb_fidelity(&tetris.circuit));
            }
            let stats = |v: &[f64]| {
                let mean = v.iter().sum::<f64>() / v.len() as f64;
                let min = v.iter().copied().fold(f64::INFINITY, f64::min);
                let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                (min, mean, max)
            };
            let (pmin, pmean, pmax) = stats(&ph_samples);
            let (tmin, tmean, tmax) = stats(&tetris_samples);
            t.row(vec![
                m.name().into(),
                k.to_string(),
                format!("{pmin:.4}"),
                format!("{pmean:.4}"),
                format!("{pmax:.4}"),
                format!("{tmin:.4}"),
                format!("{tmean:.4}"),
                format!("{tmax:.4}"),
            ]);
        }
    }
    t.emit(&results_dir().join("fig22.csv"));
}
