//! Per-string sub-circuit emission over a synthesis tree (the tree-based
//! synthesis rule of paper Fig. 1).
//!
//! Every string is emitted in full — basis changes, ascending CNOT tree,
//! `Rz` on the root, mirrored CNOT tree, mirrored basis changes. The
//! compiler does *not* special-case the common sections: identical leaf
//! trees across consecutive strings produce adjacent inverse pairs that the
//! shared peephole pass removes, which is both simpler and measurable (the
//! cancellation ratio falls out of the optimizer's report).

use crate::tree::SynthesisTree;
use tetris_circuit::{Circuit, Gate};
use tetris_pauli::{PauliBlock, PauliOp, PauliString, QubitMask};

/// Emits one Pauli string over `tree` with total rotation angle `angle`
/// (the implemented unitary is `exp(-i·(angle/2)·P)`).
///
/// # Panics
/// Panics if a data node of the tree carries the identity in `string` (the
/// compiler guarantees uniform support per block before calling this), or
/// if a support qubit of the string is not in the tree.
pub fn emit_string(tree: &SynthesisTree, string: &PauliString, angle: f64, out: &mut Circuit) {
    let data = tree.data_nodes();
    debug_assert_eq!(
        {
            let mut s: Vec<usize> = data.iter().map(|&(_, q)| q).collect();
            s.sort_unstable();
            s
        },
        string.support().collect::<Vec<usize>>(),
        "tree data nodes must equal the string support"
    );

    // Basis changes into the Z basis (Fig. 1: X → H, Y → S†·H).
    for &(pos, q) in &data {
        match string.op(q) {
            PauliOp::X => out.push(Gate::H(pos)),
            PauliOp::Y => {
                out.push(Gate::Sdg(pos));
                out.push(Gate::H(pos));
            }
            PauliOp::Z => {}
            PauliOp::I => panic!("identity operator on a tree data node"),
        }
    }

    // Ascending CNOT tree (deepest edges first), Rz, mirror.
    let edges = tree.edges_deepest_first();
    for e in &edges {
        out.push(Gate::Cnot(e.child, e.parent));
    }
    out.push(Gate::Rz(tree.root, angle));
    for e in edges.iter().rev() {
        out.push(Gate::Cnot(e.child, e.parent));
    }

    // Mirror basis changes (X → H, Y → H·S).
    for &(pos, q) in &data {
        match string.op(q) {
            PauliOp::X => out.push(Gate::H(pos)),
            PauliOp::Y => {
                out.push(Gate::H(pos));
                out.push(Gate::S(pos));
            }
            _ => {}
        }
    }
}

/// Emits every string of `block` over the (fixed) block tree; strings are
/// emitted in block order, each with angle `block.angle · coeff`.
pub fn emit_block(tree: &SynthesisTree, block: &PauliBlock, out: &mut Circuit) {
    for term in &block.terms {
        emit_string(tree, &term.string, block.angle * term.coeff, out);
    }
}

/// Whether every string of the block has the same support (the condition
/// under which one tree serves all strings). Blocks violating this are
/// regrouped by [`split_uniform_groups`]. Word-parallel: supports are
/// compared as packed `x | z` masks.
pub fn has_uniform_support(block: &PauliBlock) -> bool {
    let first = QubitMask::support_of(&block.terms[0].string);
    block
        .terms
        .iter()
        .all(|t| QubitMask::support_of(&t.string) == first)
}

/// Splits a block into sub-blocks of equal string support (insertion
/// order of first occurrence; identity strings dropped).
///
/// Bravyi-Kitaev blocks routinely mix supports — toggling a mode between
/// its `γ_even`/`γ_odd` Majorana flips Z operators on the *flip set* on and
/// off — so compiling per-support groups (typically pairs) retains the
/// intra-group cancellation that a per-string split would forfeit.
pub fn split_uniform_groups(block: &PauliBlock) -> Vec<PauliBlock> {
    if has_uniform_support(block) {
        return vec![block.clone()];
    }
    let mut order: Vec<QubitMask> = Vec::new();
    let mut groups: Vec<Vec<tetris_pauli::PauliTerm>> = Vec::new();
    for term in &block.terms {
        if term.string.is_identity() {
            continue;
        }
        let support = QubitMask::support_of(&term.string);
        match order.iter().position(|s| *s == support) {
            Some(i) => groups[i].push(term.clone()),
            None => {
                order.push(support);
                groups.push(vec![term.clone()]);
            }
        }
    }
    groups
        .into_iter()
        .enumerate()
        .map(|(i, terms)| PauliBlock::new(terms, block.angle, format!("{}#g{i}", block.label)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeKind::{Bridge, Data};
    use tetris_pauli::PauliTerm;
    use tetris_sim::Statevector;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    /// Verifies `emit_string` against the exact exponential on a direct
    /// (identity) layout.
    fn check_string(tree: &SynthesisTree, string: &str, angle: f64, n: usize) {
        let mut circuit = Circuit::new(n);
        emit_string(tree, &ps(string), angle, &mut circuit);
        // Build an input state that is non-trivial on the data qubits but
        // keeps any bridge ancillas in |0> (required by fast bridging).
        let mut expected = Statevector::zero_state(n);
        for (i, &(pos, _)) in tree.data_nodes().iter().enumerate() {
            expected.apply_gate(&Gate::H(pos));
            expected.apply_gate(&Gate::Rz(pos, 0.31 * (i + 1) as f64));
            expected.apply_gate(&Gate::S(pos));
        }
        let mut actual = expected.clone();
        actual.apply_circuit(&circuit);
        expected.apply_pauli_exp(&ps(string), angle);
        assert!(
            actual.equals_up_to_global_phase(&expected, 1e-9),
            "emit_string({string}) diverges from exp(-i θ/2 P)"
        );
    }

    #[test]
    fn chain_tree_matches_exponential() {
        // Tree 2 → 1 → 0(root); string XYZ (qubit q = position q).
        let mut t = SynthesisTree::root_only(0, 0);
        t.add_edge(1, 0, Data(1));
        t.add_edge(2, 1, Data(2));
        check_string(&t, "ZYX", 0.83, 3);
        check_string(&t, "XXZ", -1.21, 3);
        check_string(&t, "YYY", 2.05, 3);
    }

    #[test]
    fn star_tree_matches_exponential() {
        // 1,2,3 all point at 0.
        let mut t = SynthesisTree::root_only(0, 0);
        for q in 1..4 {
            t.add_edge(q, 0, Data(q));
        }
        check_string(&t, "ZXYZ", 0.64, 4);
    }

    #[test]
    fn bridge_node_acts_as_pass_through() {
        // Data at 0 (root) and 2; bridge at 1: 2 → 1 → 0.
        // Implements exp(-iθ/2 · Z0 Z2) with qubit 1 as |0> ancilla.
        let mut t = SynthesisTree::root_only(0, 0);
        t.add_edge(1, 0, Bridge);
        t.add_edge(2, 1, Data(2));
        let mut circuit = Circuit::new(3);
        emit_string(&t, &ps("ZIZ"), 0.9, &mut circuit);
        // Reference: exp on qubits {0,2} with ancilla 1 in |0>.
        let mut input = Statevector::zero_state(3);
        for pos in [0usize, 2] {
            input.apply_gate(&Gate::H(pos));
            input.apply_gate(&Gate::Rz(pos, 0.47));
        }
        let mut actual = input.clone();
        actual.apply_circuit(&circuit);
        let mut expected = input;
        expected.apply_pauli_exp(&ps("ZIZ"), 0.9);
        assert!(actual.equals_up_to_global_phase(&expected, 1e-9));
        // The ancilla is returned to |0>: reset must not panic.
        actual.apply_gate(&Gate::Reset(1));
    }

    #[test]
    fn block_emission_counts() {
        let mut t = SynthesisTree::root_only(0, 0);
        t.add_edge(1, 0, Data(1));
        t.add_edge(2, 1, Data(2));
        let block = PauliBlock::new(
            vec![
                PauliTerm::new(ps("XZZ"), 1.0),
                PauliTerm::new(ps("YZZ"), -1.0),
            ],
            0.5,
            "b",
        );
        let mut c = Circuit::new(3);
        emit_block(&t, &block, &mut c);
        // Per string: 2 edges × 2 (tree+mirror) CNOTs.
        assert_eq!(c.raw_cnot_count(), 8);
        // The inner leaf CNOT pair cancels once optimized.
        let report = tetris_circuit::cancel_gates(&mut c);
        assert_eq!(report.removed_cnots, 2);
    }

    #[test]
    fn uniform_support_detection() {
        let uniform = PauliBlock::new(
            vec![
                PauliTerm::new(ps("XZY"), 1.0),
                PauliTerm::new(ps("YZX"), 1.0),
            ],
            1.0,
            "u",
        );
        assert!(has_uniform_support(&uniform));
        let ragged = PauliBlock::new(
            vec![
                PauliTerm::new(ps("XZY"), 1.0),
                PauliTerm::new(ps("XIY"), 1.0),
            ],
            1.0,
            "r",
        );
        assert!(!has_uniform_support(&ragged));
    }
}
