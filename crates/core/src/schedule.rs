//! Lookahead block scheduling (paper §V-B).
//!
//! 1. Start with the block of largest *active length* (most non-identity
//!    operators — the richest cancellation opportunity).
//! 2. Rank the remaining blocks by leaf-section similarity (Eq. 1) to the
//!    block just synthesized; take the top-K.
//! 3. Among those candidates, schedule the one whose root set is cheapest
//!    to gather under the *current* layout (SWAP-cost estimate).
//! 4. Repeat.
//!
//! Similarity keeps the leaf sections aligned across consecutive blocks so
//! their boundary gates cancel; the SWAP estimate keeps the root gathering
//! from destroying that win (the paper's intra- vs inter-block trade-off).

use crate::cluster::find_center;
use tetris_pauli::ir::TetrisBlock;
use tetris_pauli::mask::QubitMask;
use tetris_topology::{CouplingGraph, Layout};

/// Estimated SWAPs needed to gather `block`'s root set under `layout`: the
/// sum of (distance to the would-be center − 1) over root qubits. Cheap and
/// monotone in the real cost, which is all ranking needs.
pub fn root_gather_cost(graph: &CouplingGraph, layout: &Layout, block: &TetrisBlock) -> u64 {
    let center = find_center(graph, layout, &block.root_mask);
    block
        .root_mask
        .iter()
        .map(|q| {
            let p = layout.phys_of(q).expect("qubit placed");
            (graph.dist(center, p) as u64).saturating_sub(1)
        })
        .sum()
}

/// Index (into `blocks`) of the first block to schedule: maximum active
/// length, ties toward the original order. `remaining` is the packed set
/// of still-unscheduled block indices.
pub fn pick_first(blocks: &[TetrisBlock], remaining: &QubitMask) -> usize {
    remaining
        .iter()
        .max_by_key(|&i| (blocks[i].active_length(), std::cmp::Reverse(i)))
        .expect("non-empty schedule")
}

/// Picks the next block: top-`k` by similarity to `last`, then minimum
/// root-gathering cost (ties toward the original order).
pub fn pick_next(
    blocks: &[TetrisBlock],
    remaining: &QubitMask,
    last: usize,
    k: usize,
    graph: &CouplingGraph,
    layout: &Layout,
) -> usize {
    debug_assert!(!remaining.is_empty());
    let mut ranked: Vec<(f64, usize)> = remaining
        .iter()
        .map(|i| (blocks[last].similarity(&blocks[i]), i))
        .collect();
    // Descending similarity, ascending index.
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    ranked.truncate(k.max(1));
    ranked
        .iter()
        .map(|&(_, i)| (root_gather_cost(graph, layout, &blocks[i]), i))
        .min()
        .map(|(_, i)| i)
        .expect("candidates non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_pauli::{PauliBlock, PauliTerm};

    fn block(strings: &[&str]) -> TetrisBlock {
        TetrisBlock::analyze(PauliBlock::new(
            strings
                .iter()
                .map(|s| PauliTerm::new(s.parse().unwrap(), 1.0))
                .collect(),
            0.2,
            "t",
        ))
    }

    #[test]
    fn first_pick_maximizes_active_length() {
        let blocks = vec![
            block(&["XYIII", "YXIII"]), // active 2
            block(&["XYZZZ", "YXZZZ"]), // active 5
            block(&["XYZZI", "YXZZI"]), // active 4
        ];
        let remaining = QubitMask::full(3);
        assert_eq!(pick_first(&blocks, &remaining), 1);
    }

    #[test]
    fn next_pick_prefers_similar_blocks() {
        let g = CouplingGraph::line(8);
        let l = Layout::trivial(6, 8);
        let blocks = vec![
            block(&["XYZZZI", "YXZZZI"]), // leaves {2,3,4}
            block(&["IXZZZY", "IYZZZX"]), // leaves {2,3,4} → similar to 0
            block(&["XYIIII", "YXIIII"]), // no leaf overlap, cheap roots
        ];
        // With k = 1 the similarity ranking gates the candidate set: only
        // block 1 survives, despite block 2's cheaper root gathering.
        assert_eq!(
            pick_next(&blocks, &QubitMask::from_indices(3, &[1, 2]), 0, 1, &g, &l),
            1
        );
        // With k ≥ remaining, every block is a candidate and the SWAP-cost
        // tie-breaker picks the cheaper root set (paper §V-B step 3).
        assert_eq!(
            pick_next(&blocks, &QubitMask::from_indices(3, &[1, 2]), 0, 10, &g, &l),
            2
        );
    }

    #[test]
    fn top_k_window_limits_candidates() {
        let g = CouplingGraph::line(8);
        let l = Layout::trivial(6, 8);
        // Block 2 has zero similarity but also zero gather cost; with k = 1
        // only the most similar candidate (1) is considered.
        let blocks = vec![
            block(&["XYZZZI", "YXZZZI"]),
            block(&["IXZZZY", "IYZZZX"]),
            block(&["XYIIII", "YXIIII"]),
        ];
        assert_eq!(
            pick_next(&blocks, &QubitMask::from_indices(3, &[1, 2]), 0, 1, &g, &l),
            1
        );
    }

    #[test]
    fn gather_cost_counts_distances() {
        let g = CouplingGraph::line(10);
        let l = Layout::trivial(10, 10);
        // Roots {0, 9}: center lands on one of them; the other is 9 hops
        // away → 8 estimated swaps.
        let b = block(&["XIIIIIIIIY", "YIIIIIIIIX"]);
        assert_eq!(b.root_set, vec![0, 9]);
        assert_eq!(root_gather_cost(&g, &l, &b), 8);
        // Adjacent roots cost nothing.
        let b2 = block(&["XYIIIIIIII", "YXIIIIIIII"]);
        assert_eq!(root_gather_cost(&g, &l, &b2), 0);
    }
}
