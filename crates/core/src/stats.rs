//! Compilation statistics — everything the paper's tables and figures
//! report.

use tetris_circuit::Metrics;

/// Statistics of one compilation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CompileStats {
    /// Logical CNOT count of the naive chain synthesis, `Σ 2·(w−1)` over
    /// strings — the denominator of the paper's cancellation ratio (Eq. 2).
    pub original_cnots: usize,
    /// Raw CNOTs emitted by synthesis before the peephole pass (equals
    /// `original_cnots` plus CNOTs added by bridge pass-through nodes).
    pub emitted_cnots: usize,
    /// CNOTs removed by the shared peephole pass (the canceled gates).
    pub canceled_cnots: usize,
    /// SWAP gates inserted by synthesis (before SWAP-SWAP cancellation).
    pub swaps_inserted: usize,
    /// SWAP gates remaining in the final circuit.
    pub swaps_final: usize,
    /// Single-qubit gates removed by the peephole pass.
    pub canceled_1q: usize,
    /// Metrics of the final circuit (depth, duration, counts).
    pub metrics: Metrics,
    /// Wall-clock compile time in seconds (synthesis + scheduling +
    /// peephole).
    pub compile_seconds: f64,
}

impl CompileStats {
    /// The paper's CNOT gate cancellation ratio (Eq. 2):
    /// `canceled / original`.
    pub fn cancel_ratio(&self) -> f64 {
        if self.original_cnots == 0 {
            0.0
        } else {
            self.canceled_cnots as f64 / self.original_cnots as f64
        }
    }

    /// CNOTs in the final circuit that come from Pauli-string logic (and
    /// bridges), i.e. not from SWAPs.
    pub fn logical_cnots(&self) -> usize {
        self.emitted_cnots - self.canceled_cnots
    }

    /// CNOTs contributed by SWAPs in the final circuit (3 per SWAP) — the
    /// paper's `_S` bars in Figs. 15b/18/21.
    pub fn swap_cnots(&self) -> usize {
        3 * self.swaps_final
    }

    /// Total CNOT-equivalent two-qubit gates of the final circuit.
    pub fn total_cnots(&self) -> usize {
        self.metrics.cnot_count
    }

    /// Total gates (1q + CNOT-equivalents) of the final circuit.
    pub fn total_gates(&self) -> usize {
        self.metrics.total_gates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let s = CompileStats {
            original_cnots: 100,
            emitted_cnots: 104,
            canceled_cnots: 40,
            swaps_inserted: 7,
            swaps_final: 6,
            ..Default::default()
        };
        assert!((s.cancel_ratio() - 0.4).abs() < 1e-12);
        assert_eq!(s.logical_cnots(), 64);
        assert_eq!(s.swap_cnots(), 18);
    }

    #[test]
    fn zero_original_is_not_a_division_by_zero() {
        assert_eq!(CompileStats::default().cancel_ratio(), 0.0);
    }
}
