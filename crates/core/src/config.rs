//! Compiler configuration — the paper's tuning knobs.

/// How blocks are ordered before synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Keep the ansatz-construction order (the paper's plain "Tetris"
    /// configuration in Fig. 14, which borrows Paulihedral's schedule).
    InputOrder,
    /// The paper's lookahead scheduler (§V-B): start from the block with the
    /// largest active length, then repeatedly take the top-K most similar
    /// blocks and synthesize the one with the cheapest root gathering
    /// ("Tetris+lookahead", K = 10 by default).
    Lookahead,
}

/// How cluster trees are shaped when several placed parents are adjacent to
/// an attaching qubit (the "Parallelism" knob of the paper's Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeBias {
    /// Prefer the deepest adjacent parent — chain-like trees. Deep edges
    /// between unchanged operators cancel between strings, so chains
    /// maximize CNOT cancellation at some cost in depth. (Default.)
    Chain,
    /// Prefer the shallowest adjacent parent — bushy trees. Shorter
    /// critical paths, fewer cancellations. Exposed for the ablation bench.
    Balanced,
}

/// Tetris compiler configuration.
///
/// Defaults follow the paper's final configuration: SWAP weight `w = 3`
/// (§V-A: "3 corresponds to the fact that one SWAP consists of three CNOT
/// gates"), lookahead `K = 10` (§VI-D), bridging enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TetrisConfig {
    /// SWAP-cost weight `w` of the leaf score function. Small `w` favors
    /// gate cancellation (connect to leaf qubits even when far); large `w`
    /// favors fewer SWAPs (connect to the nearest placed qubit).
    pub swap_weight: f64,
    /// Lookahead window `K` of the block scheduler.
    pub lookahead: usize,
    /// Which scheduler to run.
    pub scheduler: SchedulerKind,
    /// Whether leaf attachments may ride through free `|0>` qubits as fast
    /// bridges (§IV-C) instead of inserting SWAPs.
    pub bridging: bool,
    /// Run the shared peephole cancellation pass after synthesis (the
    /// "with Qiskit O3" configurations of Fig. 16). Synthesis itself never
    /// depends on this; disabling it only exposes raw emission.
    pub post_optimize: bool,
    /// Tree-shape preference during clustering (see [`TreeBias`]).
    pub tree_bias: TreeBias,
    /// Initial logical→physical placement (see [`InitialLayout`]).
    pub initial_layout: InitialLayout,
}

/// How logical qubits are placed before the first gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitialLayout {
    /// Logical `q` on physical `q` — the paper's setup ("initial mapping is
    /// indicated"), and the default for reproduction parity.
    Trivial,
    /// A BFS-contiguous region around the device center
    /// ([`tetris_topology::Layout::packed`]) — shortens early routing on
    /// devices whose low indices form a long line.
    Packed,
}

impl Default for TetrisConfig {
    fn default() -> Self {
        TetrisConfig {
            swap_weight: 3.0,
            lookahead: 10,
            scheduler: SchedulerKind::Lookahead,
            bridging: true,
            post_optimize: true,
            tree_bias: TreeBias::Chain,
            initial_layout: InitialLayout::Trivial,
        }
    }
}

impl TetrisConfig {
    /// The paper's plain "Tetris" variant: Paulihedral-style (input-order)
    /// scheduling, everything else default.
    pub fn without_lookahead() -> Self {
        TetrisConfig {
            scheduler: SchedulerKind::InputOrder,
            ..TetrisConfig::default()
        }
    }

    /// Sets the SWAP weight (builder style).
    pub fn with_swap_weight(mut self, w: f64) -> Self {
        self.swap_weight = w;
        self
    }

    /// Sets the lookahead window (builder style).
    pub fn with_lookahead(mut self, k: usize) -> Self {
        self.lookahead = k.max(1);
        self
    }

    /// Enables or disables bridging (builder style).
    pub fn with_bridging(mut self, on: bool) -> Self {
        self.bridging = on;
        self
    }

    /// Sets the tree-shape bias (builder style).
    pub fn with_tree_bias(mut self, bias: TreeBias) -> Self {
        self.tree_bias = bias;
        self
    }

    /// Sets the initial placement (builder style).
    pub fn with_initial_layout(mut self, layout: InitialLayout) -> Self {
        self.initial_layout = layout;
        self
    }

    /// A stable 64-bit content fingerprint of the configuration — the
    /// config third of the compilation engine's cache key. Every field that
    /// influences compilation is absorbed; equal configs hash equal on any
    /// platform or release, and flipping any single field changes the
    /// digest.
    pub fn fingerprint(&self) -> u64 {
        let mut h = tetris_pauli::fingerprint::Fingerprint64::new();
        h.write_bytes(b"tetris-config/v1");
        h.write_f64(self.swap_weight);
        h.write_usize(self.lookahead);
        h.write_u8(match self.scheduler {
            SchedulerKind::InputOrder => 0,
            SchedulerKind::Lookahead => 1,
        });
        h.write_u8(self.bridging as u8);
        h.write_u8(self.post_optimize as u8);
        h.write_u8(match self.tree_bias {
            TreeBias::Chain => 0,
            TreeBias::Balanced => 1,
        });
        h.write_u8(match self.initial_layout {
            InitialLayout::Trivial => 0,
            InitialLayout::Packed => 1,
        });
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = TetrisConfig::default();
        assert_eq!(c.swap_weight, 3.0);
        assert_eq!(c.lookahead, 10);
        assert_eq!(c.scheduler, SchedulerKind::Lookahead);
        assert!(c.bridging);
    }

    #[test]
    fn fingerprint_distinguishes_every_field() {
        let base = TetrisConfig::default();
        let variants = [
            base.with_swap_weight(4.0),
            base.with_lookahead(11),
            TetrisConfig::without_lookahead(),
            base.with_bridging(false),
            TetrisConfig {
                post_optimize: false,
                ..base
            },
            base.with_tree_bias(TreeBias::Balanced),
            base.with_initial_layout(InitialLayout::Packed),
        ];
        assert_eq!(base.fingerprint(), TetrisConfig::default().fingerprint());
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(
                v.fingerprint(),
                base.fingerprint(),
                "variant {i} must change the fingerprint"
            );
        }
    }

    #[test]
    fn builders() {
        let c = TetrisConfig::default()
            .with_swap_weight(8.0)
            .with_lookahead(0)
            .with_bridging(false);
        assert_eq!(c.swap_weight, 8.0);
        assert_eq!(c.lookahead, 1, "lookahead clamps to ≥ 1");
        assert!(!c.bridging);
        assert_eq!(
            TetrisConfig::without_lookahead().scheduler,
            SchedulerKind::InputOrder
        );
    }
}
