//! The synthesized CNOT tree of one block.

use std::collections::BTreeMap;

/// What a tree node carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A data qubit: `Data(logical index)`.
    Data(usize),
    /// A free `|0>` ancilla used as a fast bridge (§IV-C): participates in
    /// the CNOT tree as a Z-like pass-through, carries no basis gates.
    Bridge,
}

/// A directed edge `child → parent` of the CNOT tree (a CNOT with control
/// `child`, target `parent`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeEdge {
    /// Physical child node.
    pub child: usize,
    /// Physical parent node (closer to the root).
    pub parent: usize,
    /// What the child carries.
    pub child_kind: NodeKind,
}

/// The synthesized tree of one block: every edge points toward the root,
/// which receives the `Rz`.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisTree {
    /// Physical root node (the paper's `findCenter` result).
    pub root: usize,
    /// Logical qubit hosted at the root.
    pub root_logical: usize,
    /// Edges, each child appearing exactly once.
    pub edges: Vec<TreeEdge>,
}

impl SynthesisTree {
    /// A tree with only the root.
    pub fn root_only(root: usize, root_logical: usize) -> Self {
        SynthesisTree {
            root,
            root_logical,
            edges: Vec::new(),
        }
    }

    /// Adds an edge.
    ///
    /// # Panics
    /// Panics if `child` already has a parent or equals the root.
    pub fn add_edge(&mut self, child: usize, parent: usize, child_kind: NodeKind) {
        assert_ne!(child, self.root, "root cannot be a child");
        assert!(
            self.edges.iter().all(|e| e.child != child),
            "node {child} already attached"
        );
        self.edges.push(TreeEdge {
            child,
            parent,
            child_kind,
        });
    }

    /// All physical nodes of the tree (root + children).
    pub fn nodes(&self) -> Vec<usize> {
        self.nodes_iter().collect()
    }

    /// Iterator over the physical nodes (root first, then children in
    /// attachment order) without materializing a `Vec` — the inner-loop
    /// form; [`nodes`](Self::nodes) is the API-edge form.
    pub fn nodes_iter(&self) -> impl Iterator<Item = usize> + '_ {
        std::iter::once(self.root).chain(self.edges.iter().map(|e| e.child))
    }

    /// The tree's node set as a packed mask over an `n_phys`-wide device.
    ///
    /// # Panics
    /// Panics if a node index is ≥ `n_phys`.
    pub fn node_mask(&self, n_phys: usize) -> tetris_pauli::mask::QubitMask {
        let mut m = tetris_pauli::mask::QubitMask::empty(n_phys);
        for p in self.nodes_iter() {
            m.insert(p);
        }
        m
    }

    /// Physical positions of the data qubits with their logical indices
    /// (including the root).
    pub fn data_nodes(&self) -> Vec<(usize, usize)> {
        let mut out = vec![(self.root, self.root_logical)];
        for e in &self.edges {
            if let NodeKind::Data(q) = e.child_kind {
                out.push((e.child, q));
            }
        }
        out
    }

    /// Number of bridge (ancilla) nodes.
    pub fn bridge_count(&self) -> usize {
        self.edges
            .iter()
            .filter(|e| e.child_kind == NodeKind::Bridge)
            .count()
    }

    /// Depth of every node (root = 0), or `None` if an edge's parent is not
    /// in the tree (malformed).
    pub fn depths(&self) -> Option<BTreeMap<usize, usize>> {
        let mut depth = BTreeMap::new();
        depth.insert(self.root, 0usize);
        // Edges may be recorded in any order; iterate until fixpoint.
        let mut remaining: Vec<&TreeEdge> = self.edges.iter().collect();
        while !remaining.is_empty() {
            let before = remaining.len();
            remaining.retain(|e| {
                if let Some(&d) = depth.get(&e.parent) {
                    depth.insert(e.child, d + 1);
                    false
                } else {
                    true
                }
            });
            if remaining.len() == before {
                return None; // disconnected / cyclic
            }
        }
        Some(depth)
    }

    /// Whether the tree is well-formed: connected to the root, acyclic (by
    /// construction each child has one parent), edges between the given
    /// adjacency test (physical couplings).
    pub fn validate(&self, adjacent: impl Fn(usize, usize) -> bool) -> bool {
        self.depths().is_some() && self.edges.iter().all(|e| adjacent(e.child, e.parent))
    }

    /// Edges ordered deepest-first — the CNOT schedule of the ascending
    /// (pre-`Rz`) half of the sub-circuit; the mirror uses the reverse.
    pub fn edges_deepest_first(&self) -> Vec<TreeEdge> {
        let depth = self.depths().expect("malformed tree");
        let mut edges = self.edges.clone();
        edges.sort_by_key(|e| std::cmp::Reverse(depth[&e.child]));
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> SynthesisTree {
        // 3 → 2 → 1 → 0(root)
        let mut t = SynthesisTree::root_only(0, 10);
        t.add_edge(1, 0, NodeKind::Data(11));
        t.add_edge(2, 1, NodeKind::Bridge);
        t.add_edge(3, 2, NodeKind::Data(13));
        t
    }

    #[test]
    fn depths_and_order() {
        let t = chain();
        let d = t.depths().unwrap();
        assert_eq!(d[&0], 0);
        assert_eq!(d[&3], 3);
        let order: Vec<usize> = t.edges_deepest_first().iter().map(|e| e.child).collect();
        assert_eq!(order, vec![3, 2, 1]);
    }

    #[test]
    fn data_nodes_and_bridges() {
        let t = chain();
        assert_eq!(t.data_nodes(), vec![(0, 10), (1, 11), (3, 13)]);
        assert_eq!(t.bridge_count(), 1);
        assert_eq!(t.nodes(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn validation() {
        let t = chain();
        assert!(t.validate(|a, b| (a as i64 - b as i64).abs() == 1));
        assert!(!t.validate(|_, _| false));
        // Orphan edge → malformed.
        let mut bad = SynthesisTree::root_only(0, 0);
        bad.add_edge(2, 7, NodeKind::Bridge);
        assert!(bad.depths().is_none());
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn duplicate_child_panics() {
        let mut t = chain();
        t.add_edge(3, 0, NodeKind::Bridge);
    }
}
