//! Single-block circuit synthesis with respect to hardware — the paper's
//! Algorithm 1 plus fast bridging (§V-A).

use crate::cluster::{bfs_avoiding, find_center, gather_cluster, swap_along};
use crate::config::TetrisConfig;
use crate::tree::{NodeKind, SynthesisTree};
use tetris_circuit::Circuit;
use tetris_pauli::ir::TetrisBlock;
use tetris_pauli::mask::QubitMask;
use tetris_topology::{CouplingGraph, Layout};

/// The paper's leaf score:
/// `score(qn, qm, w) = (d−1)·w + (2·#ps if qm is a root-tree qubit else 2)`.
///
/// `d` is the placed-node-avoiding distance from `qn`'s position to `qm`.
/// Connecting to a root qubit costs CNOTs for *every* string of the block
/// (they cannot cancel across strings because the root section changes),
/// while connecting to a leaf qubit costs only the block's first and last
/// appearance.
#[inline]
pub fn leaf_score(d: u32, parent_is_root: bool, n_strings: usize, w: f64) -> f64 {
    let swap_term = (d.saturating_sub(1)) as f64 * w;
    let cnot_term = if parent_is_root {
        2.0 * n_strings as f64
    } else {
        2.0
    };
    swap_term + cnot_term
}

/// Synthesizes the SWAP/bridge placement of one block: gathers the root set
/// around `findCenter`, then attaches every leaf qubit to the placed node
/// with minimal [`leaf_score`], riding through free `|0>` nodes as fast
/// bridges when the whole path is free.
///
/// SWAPs are appended to `out`; `layout` is updated; the returned tree is
/// ready for [`crate::emit::emit_block`].
///
/// # Panics
/// Panics if the coupling graph cannot host the block (disconnected graph).
pub fn synthesize_block(
    graph: &CouplingGraph,
    layout: &mut Layout,
    out: &mut Circuit,
    block: &TetrisBlock,
    config: &TetrisConfig,
) -> SynthesisTree {
    let mut placed = QubitMask::empty(graph.n_qubits());

    // 1. Root tree: cluster the root set around the center (Alg. 1 l. 4-8).
    let center = find_center(graph, layout, &block.root_mask);
    let mut tree = gather_cluster(
        graph,
        layout,
        out,
        &block.root_mask,
        center,
        &mut placed,
        config.tree_bias,
    );
    let root_positions = tree.node_mask(graph.n_qubits());

    // 2. Leaf trees: attach leaf qubits by minimum score (Alg. 1 l. 9-14).
    let n_strings = block.n_strings();
    let mut unplaced = block.leaf_mask.clone();
    while !unplaced.is_empty() {
        // Evaluate score(qn, qm) for every unplaced leaf and placed node;
        // ties break on (d, qn, qm) for determinism.
        struct Candidate {
            score: f64,
            d: u32,
            qn: usize,
            qm: usize,
            attach: usize,
            path: Vec<usize>,
        }
        let mut best: Option<Candidate> = None;
        for qn in unplaced.iter() {
            let start = layout.phys_of(qn).expect("leaf qubit placed");
            let field = bfs_avoiding(graph, start, &placed);
            for qm in tree.nodes_iter() {
                // d = 1 + min reachable distance to a free neighbor of qm
                // (d = 1 when qn is already adjacent to qm).
                let reach = graph
                    .neighbors(qm)
                    .filter(|&nb| field.dist[nb] != u32::MAX && !placed.contains(nb))
                    .min_by_key(|&nb| (field.dist[nb], nb));
                let Some(nb) = reach else { continue };
                let d = field.dist[nb] + 1;
                let score = leaf_score(
                    d,
                    root_positions.contains(qm),
                    n_strings,
                    config.swap_weight,
                );
                let better = match &best {
                    None => true,
                    Some(b) => {
                        score < b.score - 1e-12
                            || ((score - b.score).abs() <= 1e-12 && (d, qn, qm) < (b.d, b.qn, b.qm))
                    }
                };
                if better {
                    let mut path = field.path_to(nb);
                    path.push(qm);
                    best = Some(Candidate {
                        score,
                        d,
                        qn,
                        qm,
                        attach: nb,
                        path,
                    });
                }
            }
        }
        let Candidate {
            qn,
            qm,
            attach,
            path,
            ..
        } = best.expect("a connected graph always exposes an attachable node");
        unplaced.remove(qn);

        // Bridging (§IV-C): if every interior node of the path is a free
        // |0> ancilla, ride through it with pass-through tree nodes instead
        // of SWAPs. `path` = [pos(qn), …, attach, qm].
        let interior = &path[1..path.len() - 1]; // excludes pos(qn) and qm
        let all_free = interior.iter().all(|&p| layout.is_free(p));
        let start = path[0];
        if config.bridging && !interior.is_empty() && all_free {
            let mut parent_chain = qm;
            // Build qn → anc_k → … → anc_1 → qm (edges point parent-ward,
            // so iterate from qm backwards).
            for &anc in interior.iter().rev() {
                tree.add_edge(anc, parent_chain, NodeKind::Bridge);
                placed.insert(anc);
                parent_chain = anc;
            }
            tree.add_edge(start, parent_chain, NodeKind::Data(qn));
            placed.insert(start);
        } else {
            // SWAP qn adjacent to qm: move along path up to `attach`.
            swap_along(layout, out, &path[..path.len() - 1]);
            tree.add_edge(attach, qm, NodeKind::Data(qn));
            placed.insert(attach);
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::emit_block;
    use tetris_pauli::ir::TetrisBlock as TB;
    use tetris_pauli::{PauliBlock, PauliTerm};

    fn block(strings: &[&str], angle: f64) -> TB {
        TB::analyze(PauliBlock::new(
            strings
                .iter()
                .map(|s| PauliTerm::new(s.parse().unwrap(), 1.0))
                .collect(),
            angle,
            "t",
        ))
    }

    #[test]
    fn score_formula() {
        // Paper Fig. 13: linking to the root costs w·(d−1) + 2·#ps; to a
        // leaf, w·(d−1) + 2. With #ps = 8, w = 3:
        assert_eq!(leaf_score(2, true, 8, 3.0), 3.0 + 16.0);
        assert_eq!(leaf_score(4, false, 8, 3.0), 9.0 + 2.0);
        // d = 1 (already adjacent): no swap term.
        assert_eq!(leaf_score(1, false, 8, 3.0), 2.0);
    }

    #[test]
    fn synthesizes_fig5_block_on_a_line() {
        // Fig. 5: {XYzzz, XXzzz, YXzzz} on a 7-node line, trivial layout.
        let g = CouplingGraph::line(7);
        let mut layout = Layout::trivial(5, 7);
        let mut out = Circuit::new(7);
        let b = block(&["XYZZZ", "XXZZZ", "YXZZZ"], 0.4);
        assert_eq!(b.root_set, vec![0, 1]);
        let tree = synthesize_block(&g, &mut layout, &mut out, &b, &TetrisConfig::default());
        assert!(tree.validate(|a, b| g.are_adjacent(a, b)));
        // All 5 data qubits are in the tree.
        assert_eq!(tree.data_nodes().len(), 5);
        assert!(out.is_hardware_compliant(&g));
        assert!(layout.is_consistent());
    }

    #[test]
    fn adjacent_leaf_needs_no_swap() {
        // Root {0}, leaf {1} already adjacent on a line: zero SWAPs.
        let g = CouplingGraph::line(4);
        let mut layout = Layout::trivial(2, 4);
        let mut out = Circuit::new(4);
        let b = block(&["ZZ"], 1.0); // promotes qubit 0 to root
        let tree = synthesize_block(&g, &mut layout, &mut out, &b, &TetrisConfig::default());
        assert_eq!(out.swap_count(), 0);
        assert_eq!(tree.edges.len(), 1);
        assert_eq!(tree.bridge_count(), 0);
    }

    #[test]
    fn distant_pair_uses_bridge_over_free_nodes() {
        // Root q0 at position 0, leaf q1 at position 3; positions 1, 2 free:
        // bridging should produce two Bridge nodes and zero SWAPs.
        let g = CouplingGraph::line(4);
        let layout0 = Layout::from_assignment(&[0, 3], 4);
        let mut layout = layout0;
        let mut out = Circuit::new(4);
        let b = block(&["ZZ"], 1.0);
        let tree = synthesize_block(&g, &mut layout, &mut out, &b, &TetrisConfig::default());
        assert_eq!(out.swap_count(), 0, "bridge should avoid SWAPs");
        assert_eq!(tree.bridge_count(), 2);
        assert!(tree.validate(|a, b| g.are_adjacent(a, b)));
    }

    #[test]
    fn bridging_disabled_falls_back_to_swaps() {
        let g = CouplingGraph::line(4);
        let mut layout = Layout::from_assignment(&[0, 3], 4);
        let mut out = Circuit::new(4);
        let b = block(&["ZZ"], 1.0);
        let cfg = TetrisConfig::default().with_bridging(false);
        let tree = synthesize_block(&g, &mut layout, &mut out, &b, &cfg);
        assert!(out.swap_count() >= 2);
        assert_eq!(tree.bridge_count(), 0);
        assert!(out.is_hardware_compliant(&g));
    }

    #[test]
    fn emitted_block_is_hardware_compliant() {
        let g = CouplingGraph::grid(3, 3);
        let mut layout = Layout::trivial(5, 9);
        let mut out = Circuit::new(9);
        let b = block(&["XZZZY", "YZZZX"], 0.7);
        let tree = synthesize_block(&g, &mut layout, &mut out, &b, &TetrisConfig::default());
        emit_block(&tree, &b.block, &mut out);
        assert!(out.is_hardware_compliant(&g));
        assert!(out.raw_cnot_count() >= 2 * 2 * 4); // 2 strings × 2·(5−1)
    }

    #[test]
    fn swap_weight_extremes_change_swap_usage() {
        // With a huge w the compiler avoids SWAPs (attaches to the nearest
        // placed node); with a tiny w it may spend SWAPs to reach leaf
        // parents. At minimum, both must stay valid.
        let g = CouplingGraph::heavy_hex_65();
        for w in [0.1, 100.0] {
            let mut layout = Layout::trivial(12, 65);
            let mut out = Circuit::new(65);
            let b = block(&["XZZZZZZZZZZY", "YZZZZZZZZZZX"], 0.3);
            let cfg = TetrisConfig::default().with_swap_weight(w);
            let tree = synthesize_block(&g, &mut layout, &mut out, &b, &cfg);
            assert!(tree.validate(|a, b| g.are_adjacent(a, b)), "w={w}");
            assert_eq!(tree.data_nodes().len(), 12);
        }
    }
}
