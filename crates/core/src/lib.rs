//! # tetris-core
//!
//! The Tetris compiler (paper §IV–V): lowers a block-structured Pauli
//! Hamiltonian onto a hardware coupling graph while exploiting two-qubit
//! gate cancellation between similar Pauli strings.
//!
//! Pipeline (paper Fig. 11):
//!
//! 1. **Block analysis** — each block's qubits are split into the
//!    *root-tree set* (operators differ across strings) and the *leaf-tree
//!    set* (common operators; their CNOTs can cancel) — done in
//!    `tetris_pauli::ir`.
//! 2. **Lookahead block scheduling** (§V-B) — blocks ordered by leaf-section
//!    similarity (Eq. 1) and root-gathering SWAP cost, top-K candidates.
//! 3. **Single-block synthesis** (§V-A, Algorithm 1) — root qubits are
//!    SWAPped into a cluster around a center; each leaf qubit attaches to
//!    the placed node minimizing `score(qn, qm, w) = (d−1)·w + {2·#ps | 2}`;
//!    free `|0>` nodes on the way become *fast bridges* instead of SWAPs.
//! 4. **Emission** — per Pauli string: basis changes, CNOT tree, `Rz`,
//!    mirror. Identical leaf trees across consecutive strings make the leaf
//!    CNOTs adjacent inverses, which the shared peephole pass removes.
//!
//! ```
//! use tetris_pauli::molecules::Molecule;
//! use tetris_pauli::encoder::Encoding;
//! use tetris_topology::CouplingGraph;
//! use tetris_core::{TetrisCompiler, TetrisConfig};
//!
//! let ham = Molecule::LiH.uccsd_hamiltonian(Encoding::JordanWigner);
//! let graph = CouplingGraph::heavy_hex_65();
//! let result = TetrisCompiler::new(TetrisConfig::default()).compile(&ham, &graph);
//! assert!(result.circuit.is_hardware_compliant(&graph));
//! assert!(result.stats.cancel_ratio() > 0.25); // leaf-tree cancellation
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod compiler;
pub mod config;
pub mod emit;
pub mod qaoa;
pub mod schedule;
pub mod stats;
pub mod synthesis;
pub mod tree;

pub use compiler::{CompileResult, TetrisCompiler};
pub use config::{InitialLayout, SchedulerKind, TetrisConfig, TreeBias};
pub use stats::CompileStats;
