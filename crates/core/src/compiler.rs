//! The Tetris compiler pipeline (paper Fig. 11).

use crate::config::{SchedulerKind, TetrisConfig};
use crate::emit::{emit_block, split_uniform_groups};
use crate::schedule::{pick_first, pick_next};
use crate::stats::CompileStats;
use crate::synthesis::synthesize_block;
use std::time::Instant;
use tetris_circuit::{cancel_gates_commutative, Circuit, Metrics};
use tetris_obs::trace::{self, Stage};
use tetris_pauli::ir::{TetrisBlock, TetrisIr};
use tetris_pauli::{Hamiltonian, PauliBlock};
use tetris_topology::{CouplingGraph, Layout};

/// Output of a compilation: the hardware-compliant circuit, the layouts and
/// the statistics the paper's evaluation reports.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// The compiled physical circuit (SWAPs first-class).
    pub circuit: Circuit,
    /// Statistics (counts, depth, duration, cancellation ratio, time).
    pub stats: CompileStats,
    /// Layout before the first gate.
    pub initial_layout: Layout,
    /// Layout after the last gate.
    pub final_layout: Layout,
    /// The order in which blocks were synthesized (indices into the IR).
    pub block_order: Vec<usize>,
    /// The blocks exactly as emitted (scheduled order, intra-block string
    /// order after similarity chaining and boundary orientation). The
    /// compiled circuit implements `∏ exp(-i·(angle·coeff/2)·P)` over these
    /// blocks in order — the oracle used by the equivalence tests.
    pub emitted_blocks: Vec<PauliBlock>,
}

/// The Tetris compiler.
///
/// See the crate docs for the pipeline; construct with a [`TetrisConfig`]
/// and call [`TetrisCompiler::compile`] (from a block Hamiltonian) or
/// [`TetrisCompiler::compile_ir`] (from an already-lowered IR).
#[derive(Debug, Clone, Default)]
pub struct TetrisCompiler {
    config: TetrisConfig,
}

impl TetrisCompiler {
    /// Creates a compiler with the given configuration.
    pub fn new(config: TetrisConfig) -> Self {
        TetrisCompiler { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TetrisConfig {
        &self.config
    }

    /// Compiles a block Hamiltonian for `graph`.
    pub fn compile(&self, hamiltonian: &Hamiltonian, graph: &CouplingGraph) -> CompileResult {
        let ir = TetrisIr::from_hamiltonian(hamiltonian);
        self.compile_ir(&ir, graph)
    }

    /// Compiles an already-lowered Tetris IR for `graph`.
    ///
    /// # Panics
    /// Panics if the IR is wider than the device.
    pub fn compile_ir(&self, ir: &TetrisIr, graph: &CouplingGraph) -> CompileResult {
        assert!(
            ir.n_qubits <= graph.n_qubits(),
            "{} logical qubits exceed the {}-qubit device",
            ir.n_qubits,
            graph.n_qubits()
        );
        // QAOA-shaped workloads take the dedicated bridging pass (§V-C):
        // there is no inter-string similarity to exploit, so placement +
        // executable-first scheduling + SWAP-vs-bridge lookahead wins.
        if crate::qaoa::is_two_local(&ir.blocks) {
            return crate::qaoa::compile_qaoa(ir, graph, &self.config);
        }
        let t0 = Instant::now();
        let blocks = preprocess(&ir.blocks);

        let initial_layout = match self.config.initial_layout {
            crate::config::InitialLayout::Trivial => Layout::trivial(ir.n_qubits, graph.n_qubits()),
            crate::config::InitialLayout::Packed => Layout::packed(ir.n_qubits, graph),
        };
        let mut layout = initial_layout.clone();
        let mut circuit = Circuit::new(graph.n_qubits());
        let mut original_cnots = 0usize;

        let mut block_order = Vec::with_capacity(blocks.len());
        let mut emitted_blocks: Vec<PauliBlock> = Vec::with_capacity(blocks.len());
        let mut last_string: Option<tetris_pauli::PauliString> = None;
        // The set of unscheduled block indices, packed: the scheduler's
        // candidate scans walk set bits instead of a shrinking Vec.
        let mut remaining = tetris_pauli::mask::QubitMask::full(blocks.len());
        let mut last: Option<usize> = None;
        while !remaining.is_empty() {
            let next = trace::timed(Stage::Scheduling, || match (self.config.scheduler, last) {
                (SchedulerKind::InputOrder, _) => {
                    remaining.first().expect("non-empty remaining set")
                }
                (SchedulerKind::Lookahead, None) => pick_first(&blocks, &remaining),
                (SchedulerKind::Lookahead, Some(l)) => pick_next(
                    &blocks,
                    &remaining,
                    l,
                    self.config.lookahead,
                    graph,
                    &layout,
                ),
            });
            remaining.remove(next);
            let b = &blocks[next];
            let tree = trace::timed(Stage::Clustering, || {
                synthesize_block(graph, &mut layout, &mut circuit, b, &self.config)
            });
            let emit_span = trace::StageTimer::start(Stage::Synthesis);
            // Orient the block so its first string is most similar to the
            // previously emitted string — inter-block boundary gates then
            // cancel like intra-block ones.
            let oriented = match last_string.as_ref() {
                Some(prev)
                    if b.block.terms.len() > 1
                        && prev.common_weight(&b.block.terms[0].string)
                            < prev
                                .common_weight(&b.block.terms[b.block.terms.len() - 1].string) =>
                {
                    let mut terms = b.block.terms.clone();
                    terms.reverse();
                    PauliBlock::new(terms, b.block.angle, b.block.label.clone())
                }
                _ => b.block.clone(),
            };
            emit_block(&tree, &oriented, &mut circuit);
            emit_span.stop();
            last_string = Some(
                oriented
                    .terms
                    .last()
                    .expect("blocks are non-empty")
                    .string
                    .clone(),
            );
            emitted_blocks.push(oriented);
            original_cnots += b
                .block
                .terms
                .iter()
                .map(|t| 2 * t.string.weight().saturating_sub(1))
                .sum::<usize>();
            block_order.push(next);
            last = Some(next);
        }

        let emitted_cnots = circuit.raw_cnot_count();
        let swaps_inserted = circuit.swap_count();
        let mut canceled_cnots = 0;
        let mut canceled_1q = 0;
        let mut swaps_final = swaps_inserted;
        if self.config.post_optimize {
            let report = trace::timed(Stage::Optimize, || cancel_gates_commutative(&mut circuit));
            canceled_cnots = report.removed_cnots;
            canceled_1q = report.removed_1q;
            swaps_final = swaps_inserted - report.removed_swaps;
        }

        let stats = CompileStats {
            original_cnots,
            emitted_cnots,
            canceled_cnots,
            swaps_inserted,
            swaps_final,
            canceled_1q,
            metrics: Metrics::of(&circuit),
            compile_seconds: t0.elapsed().as_secs_f64(),
        };
        CompileResult {
            circuit,
            stats,
            initial_layout,
            final_layout: layout,
            block_order,
            emitted_blocks,
        }
    }
}

/// Regroups blocks with non-uniform string support into equal-support
/// sub-blocks (one synthesis tree cannot serve strings with different
/// supports; Bravyi-Kitaev blocks mix supports routinely — see the emit
/// module), and orders the strings of every block by greedy similarity
/// chaining.
fn preprocess(blocks: &[TetrisBlock]) -> Vec<TetrisBlock> {
    let mut out = Vec::with_capacity(blocks.len());
    for b in blocks {
        for sub in split_uniform_groups(&b.block) {
            out.push(TetrisBlock::analyze(order_terms_by_similarity(&sub)));
        }
    }
    out
}

/// Greedy similarity chaining of a block's strings: consecutive strings
/// differ in as few positions as possible, which maximizes both 1-qubit
/// and 2-qubit boundary cancellation (the intra-block ordering Paulihedral
/// pioneered and Tetris inherits). Delegates to the word-parallel,
/// index-based [`tetris_pauli::block::greedy_similarity_order`].
fn order_terms_by_similarity(block: &PauliBlock) -> PauliBlock {
    tetris_pauli::block::greedy_similarity_order(block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetris_pauli::PauliTerm;
    use tetris_sim::Statevector;

    fn ham(n: usize, blocks: Vec<Vec<(&str, f64)>>) -> Hamiltonian {
        let blocks = blocks
            .into_iter()
            .enumerate()
            .map(|(i, terms)| {
                PauliBlock::new(
                    terms
                        .into_iter()
                        .map(|(s, c)| PauliTerm::new(s.parse().unwrap(), c))
                        .collect(),
                    0.1 + 0.07 * i as f64,
                    format!("b{i}"),
                )
            })
            .collect();
        Hamiltonian::new(n, blocks, "test")
    }

    /// End-to-end equivalence: the compiled physical circuit must equal the
    /// ordered product of exp(-i θ/2 P) factors, modulo the layout
    /// permutation, with ancillas in |0>.
    fn assert_compiled_equivalent(h: &Hamiltonian, graph: &CouplingGraph, config: TetrisConfig) {
        let result = TetrisCompiler::new(config).compile(h, graph);
        assert!(result.circuit.is_hardware_compliant(graph));

        // Input: a product state that is non-trivial on the data qubits.
        let mut logical_in = Statevector::zero_state(h.n_qubits);
        let mut prep = Circuit::new(h.n_qubits);
        for q in 0..h.n_qubits {
            prep.push(tetris_circuit::Gate::H(q));
            prep.push(tetris_circuit::Gate::Rz(q, 0.21 * (q + 1) as f64));
        }
        logical_in.apply_circuit(&prep);

        let mut physical =
            logical_in.embed(&result.initial_layout.as_assignment(), graph.n_qubits());
        physical.apply_circuit(&result.circuit);

        // Reference: apply the blocks exactly as emitted.
        let mut reference = logical_in;
        for b in &result.emitted_blocks {
            for t in &b.terms {
                reference.apply_pauli_exp(&t.string, b.angle * t.coeff);
            }
        }
        let expected = reference.embed(&result.final_layout.as_assignment(), graph.n_qubits());
        assert!(
            physical.equals_up_to_global_phase(&expected, 1e-8),
            "compiled circuit diverges from the exponential product"
        );
    }

    #[test]
    fn single_block_equivalence_on_line() {
        let h = ham(5, vec![vec![("YZZZY", 0.5), ("XZZZX", -0.5)]]);
        assert_compiled_equivalent(&h, &CouplingGraph::line(8), TetrisConfig::default());
    }

    #[test]
    fn multi_block_equivalence_on_grid() {
        let h = ham(
            4,
            vec![
                vec![("XYZZ", 0.5), ("YXZZ", -0.5)],
                vec![("ZZXY", 1.0), ("ZZYX", -1.0)],
                vec![("IZZI", 1.0)],
            ],
        );
        assert_compiled_equivalent(&h, &CouplingGraph::grid(3, 3), TetrisConfig::default());
    }

    #[test]
    fn equivalence_without_bridging() {
        let h = ham(
            4,
            vec![
                vec![("XZZY", 0.4), ("YZZX", -0.4)],
                vec![("IXYI", 0.8), ("IYXI", -0.8)],
            ],
        );
        assert_compiled_equivalent(
            &h,
            &CouplingGraph::ring(7),
            TetrisConfig::default().with_bridging(false),
        );
    }

    #[test]
    fn equivalence_input_order_scheduler() {
        let h = ham(
            4,
            vec![
                vec![("ZZII", 1.0)],
                vec![("IZZI", 1.0)],
                vec![("IIZZ", 1.0)],
            ],
        );
        assert_compiled_equivalent(
            &h,
            &CouplingGraph::line(6),
            TetrisConfig::without_lookahead(),
        );
    }

    #[test]
    fn non_uniform_support_blocks_are_split() {
        let h = ham(4, vec![vec![("XZZY", 0.4), ("XIIY", 0.6)]]);
        assert_compiled_equivalent(&h, &CouplingGraph::line(6), TetrisConfig::default());
    }

    #[test]
    fn cancellation_happens_between_similar_strings() {
        // Fig. 3's pair: leaf chain Z₁Z₂Z₃ shared → inner CNOTs cancel.
        let h = ham(5, vec![vec![("YZZZY", 0.5), ("XZZZX", -0.5)]]);
        let r = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &CouplingGraph::line(8));
        assert!(
            r.stats.canceled_cnots >= 4,
            "expected ≥ 4 canceled CNOTs, got {}",
            r.stats.canceled_cnots
        );
        assert!(r.stats.cancel_ratio() > 0.2);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let h = ham(
            4,
            vec![
                vec![("XYZZ", 0.5), ("YXZZ", -0.5)],
                vec![("ZZXY", 1.0), ("ZZYX", -1.0)],
            ],
        );
        let r =
            TetrisCompiler::new(TetrisConfig::default()).compile(&h, &CouplingGraph::grid(2, 4));
        let s = r.stats;
        assert_eq!(s.original_cnots, h.naive_cnot_count());
        assert!(s.emitted_cnots >= s.original_cnots);
        assert!(s.canceled_cnots <= s.emitted_cnots);
        assert_eq!(
            s.metrics.cnot_count,
            s.logical_cnots() + s.swap_cnots(),
            "final CNOTs = logical + swap-induced"
        );
        assert!(s.compile_seconds >= 0.0);
    }

    #[test]
    fn packed_initial_layout_stays_equivalent() {
        let h = ham(
            4,
            vec![
                vec![("XYZZ", 0.5), ("YXZZ", -0.5)],
                vec![("ZZXY", 1.0), ("ZZYX", -1.0)],
            ],
        );
        assert_compiled_equivalent(
            &h,
            &CouplingGraph::grid(3, 4),
            TetrisConfig::default().with_initial_layout(crate::config::InitialLayout::Packed),
        );
    }

    #[test]
    fn wider_than_device_panics() {
        let h = ham(5, vec![vec![("ZZZZZ", 1.0)]]);
        let result = std::panic::catch_unwind(|| {
            TetrisCompiler::new(TetrisConfig::default()).compile(&h, &CouplingGraph::line(3))
        });
        assert!(result.is_err());
    }
}
