//! The QAOA / 2-local bridging pass (paper §V-C).
//!
//! QAOA cost layers have no inter-string similarity (every Pauli string
//! touches at most two qubits), so the leaf-cancellation machinery has
//! nothing to cancel. Instead Tetris:
//!
//! 1. **places** the interaction graph onto the device (hill-climbing over
//!    layouts, minimizing total coupling distance — free device qubits
//!    spread between the data qubits become bridge fuel);
//! 2. schedules **executable terms first** (all cost terms commute);
//! 3. when stuck, applies the paper's **lookahead**: if a SWAP along the
//!    blocked term's shortest path helps other pending terms, insert the
//!    SWAP; otherwise ride a **fast CNOT bridge** through the free `|0>`
//!    qubits on the path (Fig. 8) — cheaper whenever the mapping change
//!    would not be reused.
//!
//! The pass is selected automatically by [`crate::TetrisCompiler`] when
//! every block is a single string of weight ≤ 2 (see
//! [`is_two_local`]); the emitted circuit stays fully unitary (no
//! mid-circuit measurement is needed because the 65-qubit devices leave
//! ample free ancillas for 16–20 qubit workloads).

use crate::compiler::CompileResult;
use crate::config::TetrisConfig;
use crate::emit::emit_string;
use crate::stats::CompileStats;
use crate::tree::{NodeKind, SynthesisTree};
use std::time::Instant;
use tetris_circuit::{cancel_gates_commutative, Circuit, Gate, Metrics};
use tetris_obs::trace::{self, Stage};
use tetris_pauli::ir::{TetrisBlock, TetrisIr};
use tetris_pauli::mask::QubitMask;
use tetris_topology::{CouplingGraph, Layout};

/// Whether the workload is 2-local with single-string blocks (QAOA-shaped).
pub fn is_two_local(blocks: &[TetrisBlock]) -> bool {
    !blocks.is_empty()
        && blocks
            .iter()
            .all(|b| b.n_strings() == 1 && b.active_length() <= 2)
}

/// Deterministic splitmix64 — the core crate stays free of RNG
/// dependencies; placement only needs a reproducible stream.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Compiles a 2-local workload (called by the main compiler's dispatch).
pub fn compile_qaoa(ir: &TetrisIr, graph: &CouplingGraph, config: &TetrisConfig) -> CompileResult {
    let t0 = Instant::now();
    let n = ir.n_qubits;
    // One entry per block: the ≤ 2 endpoints of its single string,
    // extracted once from the packed support by bit cursors (the
    // executable/lookahead scans only ever need the endpoints, so the
    // mask itself is not retained).
    struct Term {
        index: usize,
        u: usize,
        v: Option<usize>,
    }
    let terms: Vec<Term> = ir
        .blocks
        .iter()
        .enumerate()
        .map(|(index, b)| {
            let support = QubitMask::support_of(&b.block.terms[0].string);
            debug_assert!(
                support.count() <= 2,
                "compile_qaoa requires 2-local terms (see is_two_local)"
            );
            let u = support.first().expect("non-identity term");
            let v = support
                .next_at_or_after((u + 1).min(support.n_qubits() - 1))
                .filter(|&v| v != u);
            Term { index, u, v }
        })
        .collect();
    let pairs: Vec<(usize, usize)> = terms.iter().filter_map(|t| t.v.map(|v| (t.u, v))).collect();

    // 1. Placement (the QAOA analogue of cluster formation).
    let initial_layout = trace::timed(Stage::Clustering, || place(graph, n, &pairs, 0x7e7215));
    let mut layout = initial_layout.clone();
    let mut circuit = Circuit::new(graph.n_qubits());
    let mut original_cnots = 0usize;

    // 2/3. Executable-first scheduling with the SWAP-vs-bridge lookahead.
    let mut remaining: Vec<usize> = (0..terms.len()).collect();
    let mut block_order = Vec::with_capacity(terms.len());
    let mut emitted_blocks = Vec::with_capacity(terms.len());
    let emit_term = |ti: usize,
                     layout: &Layout,
                     circuit: &mut Circuit,
                     block_order: &mut Vec<usize>,
                     emitted_blocks: &mut Vec<tetris_pauli::PauliBlock>,
                     bridge_path: Option<&[usize]>| {
        let b = &ir.blocks[terms[ti].index];
        let term = &b.block.terms[0];
        let u = terms[ti].u;
        let tree = match (terms[ti].v, bridge_path) {
            (None, _) => SynthesisTree::root_only(layout.phys_of(u).expect("placed"), u),
            (Some(v), None) => {
                let (pu, pv) = (
                    layout.phys_of(u).expect("placed"),
                    layout.phys_of(v).expect("placed"),
                );
                let mut t = SynthesisTree::root_only(pv, v);
                t.add_edge(pu, pv, NodeKind::Data(u));
                t
            }
            (Some(v), Some(path)) => {
                // path = [pos(u), anc…, pos(v)]
                let mut t = SynthesisTree::root_only(*path.last().expect("non-empty"), v);
                let mut parent = *path.last().expect("non-empty");
                for &anc in path[1..path.len() - 1].iter().rev() {
                    t.add_edge(anc, parent, NodeKind::Bridge);
                    parent = anc;
                }
                t.add_edge(path[0], parent, NodeKind::Data(u));
                t
            }
        };
        emit_string(&tree, &term.string, b.block.angle * term.coeff, circuit);
        block_order.push(terms[ti].index);
        emitted_blocks.push(b.block.clone());
    };

    // The emission loop interleaves executable-first scheduling with the
    // SWAP-vs-bridge lookahead; its wall time is movement-dominated, so it
    // is attributed to routing as one span.
    let routing_span = trace::StageTimer::start(Stage::Routing);
    while !remaining.is_empty() {
        // Emit every currently-executable term (weight-1 terms always are).
        // `remaining` stays an order-bearing Vec on purpose: the
        // swap-remove scan order *is* the emission order, and the packed
        // form would reorder emissions (the per-term sets are the masks
        // above).
        let mut progressed = false;
        let mut i = 0;
        while i < remaining.len() {
            let ti = remaining[i];
            let executable = match terms[ti].v {
                None => true,
                Some(v) => graph.are_adjacent(
                    layout.phys_of(terms[ti].u).expect("placed"),
                    layout.phys_of(v).expect("placed"),
                ),
            };
            if executable {
                original_cnots += 2 * usize::from(terms[ti].v.is_some());
                emit_term(
                    ti,
                    &layout,
                    &mut circuit,
                    &mut block_order,
                    &mut emitted_blocks,
                    None,
                );
                remaining.swap_remove(i);
                progressed = true;
            } else {
                i += 1;
            }
        }
        if remaining.is_empty() {
            break;
        }
        if progressed {
            continue;
        }

        // Stuck: take the closest blocked term (blocked ⇒ two endpoints).
        let &ti = remaining
            .iter()
            .min_by_key(|&&ti| {
                graph.dist(
                    layout.phys_of(terms[ti].u).expect("placed"),
                    layout
                        .phys_of(terms[ti].v.expect("blocked terms are 2-local"))
                        .expect("placed"),
                )
            })
            .expect("non-empty");
        let (pu, pv) = (
            layout.phys_of(terms[ti].u).expect("placed"),
            layout
                .phys_of(terms[ti].v.expect("blocked terms are 2-local"))
                .expect("placed"),
        );
        let path = graph.shortest_path(pu, pv).expect("connected device");

        // Lookahead (paper §V-C): how many *other* pending terms does the
        // first SWAP of the path bring closer? A SWAP is only worth its 3
        // CNOTs when the mapping change is reused; a single beneficiary
        // rarely amortizes it, so bridges win unless ≥ 2 terms improve.
        let (s0, s1) = (path[0], path[1]);
        let future_helped = remaining
            .iter()
            .filter(|&&tj| tj != ti)
            .filter(|&&tj| {
                let Some(v) = terms[tj].v else {
                    return false;
                };
                let u = terms[tj].u;
                let d_before = graph.dist(
                    layout.phys_of(u).expect("placed"),
                    layout.phys_of(v).expect("placed"),
                );
                let pos = |lq: usize| {
                    let p = layout.phys_of(lq).expect("placed");
                    if p == s0 {
                        s1
                    } else if p == s1 {
                        s0
                    } else {
                        p
                    }
                };
                graph.dist(pos(u), pos(v)) < d_before
            })
            .count();
        let interior_free = path[1..path.len() - 1].iter().all(|&p| layout.is_free(p));

        if config.bridging && interior_free && future_helped < 2 {
            original_cnots += 2;
            emit_term(
                ti,
                &layout,
                &mut circuit,
                &mut block_order,
                &mut emitted_blocks,
                Some(&path),
            );
            remaining.retain(|&tj| tj != ti);
        } else {
            // SWAP one step along the path and re-scan.
            circuit.push(Gate::Swap(s0, s1));
            layout.swap_phys(s0, s1);
        }
    }

    routing_span.stop();

    let emitted_cnots = circuit.raw_cnot_count();
    let swaps_inserted = circuit.swap_count();
    let mut canceled_cnots = 0;
    let mut canceled_1q = 0;
    let mut swaps_final = swaps_inserted;
    if config.post_optimize {
        let report = trace::timed(Stage::Optimize, || cancel_gates_commutative(&mut circuit));
        canceled_cnots = report.removed_cnots;
        canceled_1q = report.removed_1q;
        swaps_final -= report.removed_swaps;
    }
    let stats = CompileStats {
        original_cnots,
        emitted_cnots,
        canceled_cnots,
        swaps_inserted,
        swaps_final,
        canceled_1q,
        metrics: Metrics::of(&circuit),
        compile_seconds: t0.elapsed().as_secs_f64(),
    };
    CompileResult {
        circuit,
        stats,
        initial_layout,
        final_layout: layout,
        block_order,
        emitted_blocks,
    }
}

/// Hill-climbing placement minimizing the bridge-aware cost of the
/// interaction edges (deterministic, multi-restart). Adjacent pairs cost
/// their 2 CNOTs; distant pairs cost a fast bridge (`2d`), which also
/// rewards placements that leave free qubits between data qubits.
fn place(graph: &CouplingGraph, n_logical: usize, pairs: &[(usize, usize)], seed: u64) -> Layout {
    let cost = |l: &Layout| -> u64 {
        pairs
            .iter()
            .map(|&(u, v)| {
                let d =
                    graph.dist(l.phys_of(u).expect("placed"), l.phys_of(v).expect("placed")) as u64;
                2 * d
            })
            .sum()
    };
    let mut overall_best: Option<(u64, Layout)> = None;
    for restart in 0..3u64 {
        let mut rng = SplitMix(seed ^ (restart.wrapping_mul(0xabcd_1234_5678_9abc)));
        let mut layout = Layout::trivial(n_logical, graph.n_qubits());
        let mut best = cost(&layout);
        for _ in 0..400 * graph.n_qubits() {
            let a = rng.below(graph.n_qubits());
            let b = rng.below(graph.n_qubits());
            if a == b {
                continue;
            }
            layout.swap_phys(a, b);
            let c = cost(&layout);
            if c <= best {
                best = c;
            } else {
                layout.swap_phys(a, b);
            }
        }
        if overall_best.as_ref().is_none_or(|(b, _)| best < *b) {
            overall_best = Some((best, layout));
        }
    }
    overall_best.expect("at least one restart").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TetrisCompiler;
    use tetris_pauli::qaoa::{maxcut_hamiltonian, Graph};
    use tetris_pauli::{Hamiltonian, PauliBlock, PauliTerm};
    use tetris_sim::Statevector;

    #[test]
    fn detects_two_local_workloads() {
        let g = Graph::random_regular(8, 3, 1);
        let h = maxcut_hamiltonian(&g, "t");
        let ir = TetrisIr::from_hamiltonian(&h);
        assert!(is_two_local(&ir.blocks));

        let wide = Hamiltonian::new(
            4,
            vec![PauliBlock::new(
                vec![PauliTerm::new("ZZZI".parse().unwrap(), 1.0)],
                1.0,
                "w",
            )],
            "wide",
        );
        assert!(!is_two_local(&TetrisIr::from_hamiltonian(&wide).blocks));
    }

    #[test]
    fn qaoa_pass_is_semantically_exact() {
        let g = Graph::random_regular(6, 3, 5);
        let h = maxcut_hamiltonian(&g, "reg");
        let device = CouplingGraph::grid(3, 4);
        let r = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &device);
        assert!(r.circuit.is_hardware_compliant(&device));

        let mut input = Statevector::zero_state(6);
        let mut prep = Circuit::new(6);
        for q in 0..6 {
            prep.push(Gate::H(q));
            prep.push(Gate::Rz(q, 0.19 * (q + 1) as f64));
        }
        input.apply_circuit(&prep);
        let mut physical = input.embed(&r.initial_layout.as_assignment(), 12);
        physical.apply_circuit(&r.circuit);
        let mut reference = input;
        for b in &r.emitted_blocks {
            for t in &b.terms {
                reference.apply_pauli_exp(&t.string, b.angle * t.coeff);
            }
        }
        let expected = reference.embed(&r.final_layout.as_assignment(), 12);
        assert!(physical.equals_up_to_global_phase(&expected, 1e-8));
    }

    #[test]
    fn qaoa_pass_emits_every_term_once() {
        let g = Graph::random_gnm(10, 14, 3);
        let h = maxcut_hamiltonian(&g, "rand");
        let device = CouplingGraph::heavy_hex_65();
        let r = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &device);
        assert_eq!(r.block_order.len(), 14);
        let mut sorted = r.block_order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 14, "every edge exactly once");
        // Rz count equals term count.
        let rz = r
            .circuit
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Rz(..)))
            .count();
        assert_eq!(rz, 14);
    }

    #[test]
    fn placement_beats_trivial_layout() {
        let g = Graph::random_gnm(12, 20, 9);
        let pairs: Vec<(usize, usize)> = g.edges.clone();
        let device = CouplingGraph::heavy_hex_65();
        let placed = place(&device, 12, &pairs, 3);
        let trivial = Layout::trivial(12, 65);
        let cost = |l: &Layout| -> u64 {
            pairs
                .iter()
                .map(|&(u, v)| device.dist(l.phys_of(u).unwrap(), l.phys_of(v).unwrap()) as u64)
                .sum()
        };
        assert!(cost(&placed) <= cost(&trivial));
        assert!(placed.is_consistent());
    }
}
