//! Qubit clustering: `findCenter` and SWAP-based gathering (Algorithm 1,
//! lines 4–8).
//!
//! These primitives are shared by the Tetris root-tree construction, by the
//! per-string fallback path, and by the Paulihedral-like baseline (which
//! gathers a block's *entire* support this way — the paper's §III
//! "connected component" growth).
//!
//! All qubit sets here are packed [`QubitMask`]s: the gather loop's
//! member/frontier tracking, the BFS walls and the `findCenter` candidate
//! scan run on word-parallel set operations; `Vec<usize>` appears only in
//! BFS path reconstruction, where order is the payload.

use crate::config::TreeBias;
use crate::tree::{NodeKind, SynthesisTree};
use std::collections::VecDeque;
use tetris_circuit::{Circuit, Gate};
use tetris_pauli::mask::QubitMask;
use tetris_topology::{CouplingGraph, Layout};

/// Result of a BFS over the coupling graph that treats `blocked` nodes as
/// walls (start is always allowed).
#[derive(Debug, Clone)]
pub struct BfsField {
    /// Distance from the start per physical node (`u32::MAX` = unreachable).
    pub dist: Vec<u32>,
    /// BFS predecessor per node (`usize::MAX` for start/unreachable).
    pub prev: Vec<usize>,
}

impl BfsField {
    /// Reconstructs the path from the BFS start to `target` (inclusive).
    ///
    /// # Panics
    /// Panics if `target` is unreachable.
    pub fn path_to(&self, target: usize) -> Vec<usize> {
        assert!(self.dist[target] != u32::MAX, "target unreachable");
        let mut path = vec![target];
        let mut cur = target;
        while self.prev[cur] != usize::MAX {
            cur = self.prev[cur];
            path.push(cur);
        }
        path.reverse();
        path
    }
}

/// BFS from `start`, never entering nodes in the `blocked` set (start is
/// always allowed).
pub fn bfs_avoiding(graph: &CouplingGraph, start: usize, blocked: &QubitMask) -> BfsField {
    let n = graph.n_qubits();
    let mut dist = vec![u32::MAX; n];
    let mut prev = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    dist[start] = 0;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for v in graph.neighbors(u) {
            if dist[v] == u32::MAX && !blocked.contains(v) {
                dist[v] = dist[u] + 1;
                prev[v] = u;
                queue.push_back(v);
            }
        }
    }
    BfsField { dist, prev }
}

/// Moves the occupant of `path[0]` to `path.last()` by SWAPping along the
/// path, emitting the SWAPs and updating the layout.
pub fn swap_along(layout: &mut Layout, out: &mut Circuit, path: &[usize]) {
    for w in path.windows(2) {
        out.push(Gate::Swap(w[0], w[1]));
        layout.swap_phys(w[0], w[1]);
    }
}

/// The paper's `findCenter`: the physical node minimizing the total distance
/// to the current positions of the `qubits` set. Ties prefer nodes already
/// hosting one of the qubits, then lower indices (deterministic).
///
/// # Panics
/// Panics if `qubits` is empty or one of them is unplaced.
pub fn find_center(graph: &CouplingGraph, layout: &Layout, qubits: &QubitMask) -> usize {
    assert!(!qubits.is_empty(), "findCenter of an empty set");
    let mut positions = QubitMask::empty(graph.n_qubits());
    for q in qubits.iter() {
        positions.insert(layout.phys_of(q).expect("qubit placed"));
    }
    // One lazily-cached distance row per *position* (|positions| rows, not
    // one per candidate center): distances are symmetric, so dist(c, p) is
    // read as rows[p][c]. Bit-identical to the per-candidate sum.
    let rows: Vec<&[u32]> = positions.iter().map(|p| graph.dist_row(p)).collect();
    (0..graph.n_qubits())
        .min_by_key(|&c| {
            let cost: u64 = rows.iter().map(|r| r[c] as u64).sum();
            (cost, !positions.contains(c), c)
        })
        .expect("non-empty graph")
}

/// Gathers the `qubits` set into a contiguous cluster around `center`
/// (Algorithm 1 lines 4–8 generalized): qubits are routed one at a time,
/// nearest first; each lands on a free-of-cluster node adjacent to the
/// growing cluster and records that neighbor as its tree parent.
///
/// Emits SWAPs into `out`, updates `layout`, and inserts every cluster node
/// into `placed`. Returns the cluster tree rooted at `center`.
///
/// # Panics
/// Panics if `qubits` is empty, or if the graph is too fragmented to host
/// the cluster (cannot happen on a connected graph).
pub fn gather_cluster(
    graph: &CouplingGraph,
    layout: &mut Layout,
    out: &mut Circuit,
    qubits: &QubitMask,
    center: usize,
    placed: &mut QubitMask,
    bias: TreeBias,
) -> SynthesisTree {
    assert!(!qubits.is_empty(), "cannot gather an empty set");
    let mut remaining = qubits.clone();
    // The qubit closest to the center becomes the root occupant.
    let first = remaining
        .iter()
        .min_by_key(|&q| {
            (
                graph.dist(center, layout.phys_of(q).expect("qubit placed")),
                q,
            )
        })
        .expect("non-empty set");
    remaining.remove(first);
    let p_first = layout.phys_of(first).expect("qubit placed");
    if p_first != center {
        let path = graph
            .shortest_path(p_first, center)
            .expect("connected coupling graph");
        swap_along(layout, out, &path);
    }
    let mut tree = SynthesisTree::root_only(center, first);
    placed.insert(center);
    // Cluster membership and node depths, tracked incrementally — the
    // inner loops below probe these instead of re-deriving `tree.nodes()`
    // / `tree.depths()` per attachment.
    let mut cluster = QubitMask::empty(graph.n_qubits());
    cluster.insert(center);
    let mut depth = vec![u32::MAX; graph.n_qubits()];
    depth[center] = 0;

    while !remaining.is_empty() {
        // Nearest-to-cluster first (free distances are a fine ordering
        // heuristic; exact avoidance happens in the BFS below).
        let q = remaining
            .iter()
            .min_by_key(|&q| {
                let p = layout.phys_of(q).expect("qubit placed");
                let d = cluster
                    .iter()
                    .map(|m| graph.dist(p, m))
                    .min()
                    .unwrap_or(u32::MAX);
                (d, q)
            })
            .expect("remaining is non-empty");
        remaining.remove(q);
        let start = layout.phys_of(q).expect("qubit placed");

        let field = bfs_avoiding(graph, start, placed);
        // Attach at the reachable node (possibly `start` itself) that is
        // adjacent to the cluster, minimizing travel distance.
        let attach = (0..graph.n_qubits())
            .filter(|&node| field.dist[node] != u32::MAX && !placed.contains(node))
            .filter(|&node| graph.neighbors(node).any(|m| placed.contains(m)))
            .min_by_key(|&node| (field.dist[node], node))
            .expect("a connected graph always exposes a cluster-adjacent node");
        // Parent choice is the tree-shape knob: chain-shaped trees (deepest
        // parent) maximize cancellation — an edge cancels between
        // consecutive strings iff both endpoint operators are unchanged,
        // and deep edges avoid the frequently-changing center (which also
        // carries the Rz). Balanced (shallowest parent) trades cancellation
        // for depth; see the ablation bench.
        let parent = graph
            .neighbors(attach)
            .filter(|&m| placed.contains(m))
            .max_by_key(|&m| {
                let d = if depth[m] == u32::MAX { 0 } else { depth[m] };
                let key = match bias {
                    TreeBias::Chain => d as i64,
                    TreeBias::Balanced => -(d as i64),
                };
                (key, std::cmp::Reverse(m))
            })
            .expect("attach node borders the cluster");
        swap_along(layout, out, &field.path_to(attach));
        tree.add_edge(attach, parent, NodeKind::Data(q));
        placed.insert(attach);
        cluster.insert(attach);
        depth[attach] = depth[parent] + 1;
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_of_a_line_spread() {
        let g = CouplingGraph::line(7);
        let l = Layout::trivial(7, 7);
        // Qubits at 0 and 6: any middle node minimizes; tie-break picks 3?
        // cost is equal (6) for all of 0..=6 — hosting nodes win: 0.
        assert_eq!(find_center(&g, &l, &QubitMask::from_indices(7, &[0, 6])), 0);
        // Qubits at 2,3,4 → 3 hosts and minimizes.
        assert_eq!(
            find_center(&g, &l, &QubitMask::from_indices(7, &[2, 3, 4])),
            3
        );
    }

    #[test]
    fn gather_contiguous_cluster() {
        let g = CouplingGraph::line(8);
        let mut l = Layout::trivial(8, 8);
        let mut c = Circuit::new(8);
        let mut placed = QubitMask::empty(8);
        let tree = gather_cluster(
            &g,
            &mut l,
            &mut c,
            &QubitMask::from_indices(8, &[0, 3, 7]),
            3,
            &mut placed,
            TreeBias::Chain,
        );
        assert!(tree.validate(|a, b| g.are_adjacent(a, b)));
        assert_eq!(tree.root, 3);
        // All three qubits sit on contiguous nodes around 3.
        let nodes = tree.nodes();
        assert_eq!(nodes.len(), 3);
        for (pos, q) in tree.data_nodes() {
            assert_eq!(l.phys_of(q), Some(pos));
        }
        assert!(l.is_consistent());
        // Moving 0→adjacent-of-3 and 7→adjacent-of-3 costs swaps.
        assert!(c.swap_count() >= 4);
    }

    #[test]
    fn gather_when_already_clustered_is_free() {
        let g = CouplingGraph::line(6);
        let mut l = Layout::trivial(6, 6);
        let mut c = Circuit::new(6);
        let mut placed = QubitMask::empty(6);
        let tree = gather_cluster(
            &g,
            &mut l,
            &mut c,
            &QubitMask::from_indices(6, &[1, 2, 3]),
            2,
            &mut placed,
            TreeBias::Chain,
        );
        assert_eq!(c.swap_count(), 0);
        assert_eq!(tree.edges.len(), 2);
    }

    #[test]
    fn bfs_respects_walls() {
        let g = CouplingGraph::ring(6);
        let blocked = QubitMask::from_indices(6, &[1]);
        let f = bfs_avoiding(&g, 0, &blocked);
        assert_eq!(f.dist[2], 4); // the long way around
        assert_eq!(f.path_to(2), vec![0, 5, 4, 3, 2]);
        assert_eq!(f.dist[1], u32::MAX);
    }

    #[test]
    fn gather_on_heavy_hex_stays_valid() {
        let g = CouplingGraph::heavy_hex_65();
        let mut l = Layout::trivial(30, 65);
        let mut c = Circuit::new(65);
        let mut placed = QubitMask::empty(65);
        let qubits: Vec<usize> = (0..12).collect();
        let qubits = QubitMask::from_indices(30, &qubits);
        let center = find_center(&g, &l, &qubits);
        let tree = gather_cluster(
            &g,
            &mut l,
            &mut c,
            &qubits,
            center,
            &mut placed,
            TreeBias::Chain,
        );
        assert!(tree.validate(|a, b| g.are_adjacent(a, b)));
        assert_eq!(tree.nodes().len(), 12);
        assert!(l.is_consistent());
        assert!(c.is_hardware_compliant(&g));
    }
}
