//! Quickstart: compile the LiH UCCSD ansatz for IBM's 65-qubit heavy-hex
//! device and print the statistics the paper reports.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tetris::core::{TetrisCompiler, TetrisConfig};
use tetris::pauli::encoder::Encoding;
use tetris::pauli::molecules::Molecule;
use tetris::topology::CouplingGraph;

fn main() {
    // 1. Build the Hamiltonian: LiH, UCCSD ansatz, Jordan-Wigner encoding.
    let hamiltonian = Molecule::LiH.uccsd_hamiltonian(Encoding::JordanWigner);
    println!(
        "workload: {} — {} qubits, {} Pauli strings in {} blocks",
        hamiltonian.name,
        hamiltonian.n_qubits,
        hamiltonian.pauli_string_count(),
        hamiltonian.blocks.len(),
    );

    // 2. Pick a backend.
    let graph = CouplingGraph::heavy_hex_65();
    println!("backend:  {graph}");

    // 3. Compile with the paper's default configuration (w = 3, K = 10,
    //    bridging on).
    let result = TetrisCompiler::new(TetrisConfig::default()).compile(&hamiltonian, &graph);
    assert!(result.circuit.is_hardware_compliant(&graph));

    let s = &result.stats;
    println!("\ncompiled in {:.3}s", s.compile_seconds);
    println!("  original logical CNOTs : {}", s.original_cnots);
    println!(
        "  canceled CNOTs         : {} ({:.1}% cancellation ratio)",
        s.canceled_cnots,
        100.0 * s.cancel_ratio()
    );
    println!("  SWAPs inserted         : {}", s.swaps_final);
    println!("  total CNOT count       : {}", s.total_cnots());
    println!("  total gate count       : {}", s.total_gates());
    println!("  circuit depth          : {}", s.metrics.depth);
    println!("  circuit duration (dt)  : {}", s.metrics.duration);
}
