//! Trotterized time evolution + a p-layer QAOA ansatz: the two product
//! formulas VQA compilers consume (paper §I), both compiled end to end.
//!
//! ```sh
//! cargo run --release --example trotter_evolution
//! ```

use tetris::core::{TetrisCompiler, TetrisConfig};
use tetris::pauli::encoder::Encoding;
use tetris::pauli::molecules::Molecule;
use tetris::pauli::qaoa::{qaoa_ansatz, Graph};
use tetris::pauli::trotter::{trotterize, trotterize_second_order};
use tetris::topology::CouplingGraph;

fn main() {
    let graph = CouplingGraph::heavy_hex_65();
    let compiler = TetrisCompiler::new(TetrisConfig::default());

    // 1. Trotterized chemistry evolution: LiH over 1, 2 and 4 steps. The
    //    per-step angles shrink; the circuit size scales with the step
    //    count, but cross-step block scheduling keeps cancellation alive.
    let lih = Molecule::LiH.uccsd_hamiltonian(Encoding::JordanWigner);
    println!("LiH UCCSD, first-order Trotter:");
    println!(
        "{:>7} {:>10} {:>10} {:>9}",
        "steps", "CNOTs", "depth", "cancel%"
    );
    for steps in [1usize, 2, 4] {
        let h = trotterize(&lih, steps);
        let r = compiler.compile(&h, &graph);
        println!(
            "{:>7} {:>10} {:>10} {:>8.1}%",
            steps,
            r.stats.total_cnots(),
            r.stats.metrics.depth,
            100.0 * r.stats.cancel_ratio()
        );
    }

    // 2. Second-order (symmetric) formula: the palindrome doubles the block
    //    count but its mirrored boundary cancels extra gates.
    let h2 = trotterize_second_order(&lih, 1);
    let r2 = compiler.compile(&h2, &graph);
    println!(
        "\nsecond-order, 1 step: {} CNOTs, cancel {:.1}%",
        r2.stats.total_cnots(),
        100.0 * r2.stats.cancel_ratio()
    );

    // 3. A p = 2 QAOA ansatz (cost + mixer layers) routed through the
    //    bridging pass.
    let g = Graph::random_regular(16, 3, 11);
    let ansatz = qaoa_ansatz(&g, &[0.4, 0.8], &[0.9, 0.5], "p2-reg3-16");
    let r3 = compiler.compile(&ansatz, &graph);
    assert!(r3.circuit.is_hardware_compliant(&graph));
    println!(
        "\nQAOA p=2 on REG3-16: {} blocks → {} CNOTs, depth {}",
        ansatz.blocks.len(),
        r3.stats.total_cnots(),
        r3.stats.metrics.depth
    );
}
