//! End-to-end VQE energy evaluation on a small system: build a toy
//! Hamiltonian, prepare the UCCSD-style ansatz state by *running the
//! compiled physical circuit* on the statevector simulator, and evaluate
//! the energy `⟨ψ|H|ψ⟩` term by term — demonstrating that the compiled
//! circuit is a drop-in replacement for the logical ansatz.
//!
//! ```sh
//! cargo run --release --example vqe_energy
//! ```

use tetris::circuit::{Circuit, Gate};
use tetris::core::{TetrisCompiler, TetrisConfig};
use tetris::pauli::encoder::Encoding;
use tetris::pauli::fermion::{double_excitation, single_excitation};
use tetris::pauli::{Hamiltonian, PauliBlock, PauliString};
use tetris::sim::Statevector;
use tetris::topology::CouplingGraph;

/// A 4-spin-orbital, 2-electron toy ansatz (H2-like).
fn ansatz(encoding: Encoding) -> Hamiltonian {
    let n = 4;
    let blocks = vec![
        PauliBlock::new(encoding.encode(&single_excitation(n, 2, 0)), 0.11, "s02"),
        PauliBlock::new(encoding.encode(&single_excitation(n, 3, 1)), 0.08, "s13"),
        PauliBlock::new(
            encoding.encode(&double_excitation(n, 3, 2, 1, 0)),
            -0.23,
            "d0123",
        ),
    ];
    Hamiltonian::new(n, blocks, format!("H2-{encoding}"))
}

/// A toy measurement Hamiltonian (ZZ couplings + fields).
fn observable(n: usize) -> Vec<(PauliString, f64)> {
    let mut terms = Vec::new();
    for q in 0..n {
        terms.push((
            PauliString::from_sparse(n, &[(q, tetris::pauli::PauliOp::Z)]),
            -0.4 + 0.1 * q as f64,
        ));
    }
    for q in 0..n - 1 {
        terms.push((
            PauliString::from_sparse(
                n,
                &[
                    (q, tetris::pauli::PauliOp::Z),
                    (q + 1, tetris::pauli::PauliOp::Z),
                ],
            ),
            0.25,
        ));
    }
    terms
}

fn main() {
    let n = 4;
    let device = CouplingGraph::line(6);
    let obs = observable(n);

    // Hartree-Fock reference |0011> (modes 0 and 1 occupied).
    let mut prep = Circuit::new(n);
    prep.push(Gate::X(0));
    prep.push(Gate::X(1));

    for encoding in [Encoding::JordanWigner, Encoding::BravyiKitaev] {
        let h = ansatz(encoding);
        let result = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &device);
        assert!(result.circuit.is_hardware_compliant(&device));

        // Logical reference energy.
        let mut logical = Statevector::zero_state(n);
        logical.apply_circuit(&prep);
        for b in &result.emitted_blocks {
            for t in &b.terms {
                logical.apply_pauli_exp(&t.string, b.angle * t.coeff);
            }
        }
        let e_logical: f64 = obs
            .iter()
            .map(|(p, c)| c * logical.expectation_value(p))
            .sum();

        // Physical energy: run the compiled circuit, then evaluate the
        // observable through the final layout permutation.
        let mut physical = Statevector::zero_state(n);
        physical.apply_circuit(&prep);
        let mut physical = physical.embed(&result.initial_layout.as_assignment(), 6);
        physical.apply_circuit(&result.circuit);
        let assignment = result.final_layout.as_assignment();
        let e_physical: f64 = obs
            .iter()
            .map(|(p, c)| {
                let mapped = PauliString::from_sparse(
                    6,
                    &p.sparse()
                        .into_iter()
                        .map(|(q, op)| (assignment[q], op))
                        .collect::<Vec<_>>(),
                );
                c * physical.expectation_value(&mapped)
            })
            .sum();

        println!(
            "{encoding}: E_logical = {e_logical:+.9}, E_physical = {e_physical:+.9}, |Δ| = {:.2e}  ({} CNOTs)",
            (e_logical - e_physical).abs(),
            result.stats.total_cnots()
        );
        assert!((e_logical - e_physical).abs() < 1e-9);
    }
    println!("\ncompiled circuits reproduce the logical VQE energy exactly ✔");
}
