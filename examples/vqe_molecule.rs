//! VQE compilation showdown: compile a molecule with every compiler in the
//! workspace and compare the paper's metrics side by side.
//!
//! ```sh
//! cargo run --release --example vqe_molecule -- BeH2 bk sycamore
//! ```
//!
//! Arguments (all optional): molecule (`LiH|BeH2|CH4|MgH2|LiCl|CO2`),
//! encoder (`jw|bk`), backend (`heavy-hex|sycamore`).

use tetris::baselines::{generic, max_cancel, paulihedral, pcoast_like};
use tetris::core::{TetrisCompiler, TetrisConfig};
use tetris::pauli::encoder::Encoding;
use tetris::pauli::molecules::Molecule;
use tetris::topology::CouplingGraph;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let molecule = match args.get(1).map(|s| s.as_str()) {
        Some("BeH2") => Molecule::BeH2,
        Some("CH4") => Molecule::CH4,
        Some("MgH2") => Molecule::MgH2,
        Some("LiCl") => Molecule::LiCl,
        Some("CO2") => Molecule::CO2,
        _ => Molecule::LiH,
    };
    let encoding = match args.get(2).map(|s| s.as_str()) {
        Some("bk") => Encoding::BravyiKitaev,
        _ => Encoding::JordanWigner,
    };
    let graph = match args.get(3).map(|s| s.as_str()) {
        Some("sycamore") => CouplingGraph::sycamore_64(),
        _ => CouplingGraph::heavy_hex_65(),
    };

    println!("compiling {molecule} ({encoding}) for {graph}\n");
    let h = molecule.uccsd_hamiltonian(encoding);

    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "compiler", "CNOTs", "swapCNOTs", "depth", "1q", "cancel%"
    );
    let report = |name: &str, stats: &tetris::core::CompileStats| {
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>10} {:>8.1}%",
            name,
            stats.total_cnots(),
            stats.swap_cnots(),
            stats.metrics.depth,
            stats.metrics.single_qubit_count,
            100.0 * stats.cancel_ratio(),
        );
    };

    let tket = generic::compile(&h, &graph, generic::OptLevel::Native);
    report("tket-like", &tket.stats);
    let pcoast = pcoast_like::compile(&h, &graph);
    report("pcoast-like", &pcoast.stats);
    let mc = max_cancel::compile(&h, &graph);
    report("max-cancel", &mc.stats);
    let ph = paulihedral::compile(&h, &graph, true);
    report("paulihedral", &ph.stats);
    let tetris = TetrisCompiler::new(TetrisConfig::without_lookahead()).compile(&h, &graph);
    report("tetris", &tetris.stats);
    let tetris_la = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &graph);
    report("tetris+lookahead", &tetris_la.stats);

    println!(
        "\nTetris+lookahead reduces CNOTs by {:.1}% vs Paulihedral",
        100.0 * (1.0 - tetris_la.stats.total_cnots() as f64 / ph.stats.total_cnots() as f64)
    );
}
