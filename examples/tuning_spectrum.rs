//! The Tetris tuning spectrum (paper §IV-B2 and Fig. 20): sweeping the SWAP
//! weight `w` trades SWAP insertion against two-qubit gate cancellation.
//! Small `w` → the compiler spends SWAPs to keep leaf qubits chained
//! (maximum cancellation); large `w` → it attaches each leaf to the nearest
//! placed qubit (minimum SWAPs, missed cancellations).
//!
//! ```sh
//! cargo run --release --example tuning_spectrum
//! ```

use tetris::core::{TetrisCompiler, TetrisConfig};
use tetris::pauli::encoder::Encoding;
use tetris::pauli::molecules::Molecule;
use tetris::topology::CouplingGraph;

fn main() {
    let h = Molecule::BeH2.uccsd_hamiltonian(Encoding::JordanWigner);
    println!("BeH2 (JW) on heavy-hex and Sycamore, sweeping w:\n");
    for graph in [CouplingGraph::heavy_hex_65(), CouplingGraph::sycamore_64()] {
        println!("{graph}");
        println!(
            "  {:>7} {:>8} {:>14} {:>12} {:>9}",
            "w", "swaps", "logicalCNOTs", "totalCNOTs", "cancel%"
        );
        for w in [0.1, 0.5, 1.0, 3.0, 5.0, 10.0, 100.0] {
            let cfg = TetrisConfig::default().with_swap_weight(w);
            let r = TetrisCompiler::new(cfg).compile(&h, &graph);
            println!(
                "  {:>7.1} {:>8} {:>14} {:>12} {:>8.1}%",
                w,
                r.stats.swaps_final,
                r.stats.logical_cnots(),
                r.stats.total_cnots(),
                100.0 * r.stats.cancel_ratio(),
            );
        }
        println!();
    }
}
