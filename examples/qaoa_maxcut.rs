//! QAOA MaxCut compilation (paper §V-C / Fig. 23): compile the cost layer
//! of a random 3-regular graph with Paulihedral, 2QAN-lite and Tetris
//! (whose fast bridging rides through free `|0>` qubits).
//!
//! ```sh
//! cargo run --release --example qaoa_maxcut -- 18 3
//! ```

use tetris::baselines::{paulihedral, qaoa_2qan};
use tetris::core::{TetrisCompiler, TetrisConfig};
use tetris::pauli::qaoa::{maxcut_hamiltonian, Graph};
use tetris::topology::CouplingGraph;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let d: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);

    let g = Graph::random_regular(n, d, 42);
    let h = maxcut_hamiltonian(&g, &format!("REG{d}-{n}"));
    let device = CouplingGraph::heavy_hex_65();
    println!(
        "MaxCut on a random {d}-regular graph: {} vertices, {} edges, device {device}\n",
        g.n,
        g.edges.len()
    );

    let ph = paulihedral::compile(&h, &device, true);
    let two_qan = qaoa_2qan::compile(&h, &device, 7);
    let tetris = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &device);

    println!(
        "{:<12} {:>8} {:>8} {:>8}",
        "compiler", "CNOTs", "depth", "swaps"
    );
    for (name, cnots, depth, swaps) in [
        (
            "paulihedral",
            ph.stats.total_cnots(),
            ph.stats.metrics.depth,
            ph.stats.swaps_final,
        ),
        (
            "2qan-lite",
            two_qan.stats.total_cnots(),
            two_qan.stats.metrics.depth,
            two_qan.stats.swaps_final,
        ),
        (
            "tetris",
            tetris.stats.total_cnots(),
            tetris.stats.metrics.depth,
            tetris.stats.swaps_final,
        ),
    ] {
        println!("{name:<12} {cnots:>8} {depth:>8} {swaps:>8}");
    }
    println!(
        "\nnormalized to PH: 2QAN = {:.2}, Tetris = {:.2} (gate count)",
        two_qan.stats.total_cnots() as f64 / ph.stats.total_cnots() as f64,
        tetris.stats.total_cnots() as f64 / ph.stats.total_cnots() as f64,
    );
}
