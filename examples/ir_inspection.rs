//! Inspecting the Tetris IR (paper Fig. 6): plain IR with the common
//! section lower-cased, the recursive refinement with per-boundary common
//! sections, and the cancellation bounds both imply.
//!
//! ```sh
//! cargo run --release --example ir_inspection
//! ```

use tetris::pauli::encoder::Encoding;
use tetris::pauli::fermion::double_excitation;
use tetris::pauli::ir::TetrisBlock;
use tetris::pauli::ir_recursive::RecursiveBlock;
use tetris::pauli::PauliBlock;

fn main() {
    // Fig. 6's block family: a JW double excitation.
    let generator = double_excitation(5, 4, 3, 1, 0);
    let terms = Encoding::JordanWigner.encode(&generator);
    let block = PauliBlock::new(terms, 0.5, "d(0,1->3,4)");

    println!("Pauli block (Paulihedral IR view):");
    for t in &block.terms {
        println!("  ({}, {:+.3})", t.string, t.coeff);
    }

    let tb = TetrisBlock::analyze(block.clone());
    println!("\nTetris IR (Fig. 6b — block-common section lower-cased):");
    println!("{tb}");
    println!("root set: {:?}", tb.root_set);
    println!("leaf set: {:?}  (all-string common operators)", tb.leaf_set);

    let rb = RecursiveBlock::analyze(block);
    println!("\nTetris-IR-recursive (Fig. 6c — per-boundary sharing):");
    println!("{rb}");
    println!(
        "flat cancellation bound:      {} CNOTs",
        rb.flat_cancel_bound()
    );
    println!(
        "recursive cancellation bound: {} CNOTs",
        rb.recursive_cancel_bound()
    );
}
