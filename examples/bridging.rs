//! Fast bridging demo (paper §IV-C, Figs. 8-9): on a sparse device with
//! free `|0>` qubits between the data qubits, Tetris rides CNOT bridges
//! through the ancillas instead of inserting SWAPs — and the bridge CNOTs
//! cancel between Pauli strings exactly like leaf-tree gates.
//!
//! ```sh
//! cargo run --release --example bridging
//! ```

use tetris::circuit::Gate;
use tetris::core::{TetrisCompiler, TetrisConfig};
use tetris::pauli::{Hamiltonian, PauliBlock, PauliString, PauliTerm};
use tetris::topology::CouplingGraph;

fn workload() -> Hamiltonian {
    // Fig. 9's shape: two sparse ZZ strings whose data qubits are far apart
    // on the device, with idle qubits in between.
    let block = |s: &str, label: &str| {
        PauliBlock::new(
            vec![PauliTerm::new(s.parse::<PauliString>().unwrap(), 1.0)],
            0.8,
            label,
        )
    };
    Hamiltonian::new(
        6,
        vec![block("ZZIZII", "ps1"), block("IIIZIZ", "ps2")],
        "fig9",
    )
}

fn report(name: &str, r: &tetris::core::CompileResult) {
    let bridges = r
        .circuit
        .gates()
        .iter()
        .filter(|g| matches!(g, Gate::Cnot(..)))
        .count();
    println!(
        "{name:<22} CNOTs={:<4} swaps={:<3} depth={:<4} (raw CNOT gates: {bridges})",
        r.stats.total_cnots(),
        r.stats.swaps_final,
        r.stats.metrics.depth,
    );
}

fn main() {
    let h = workload();
    // A 12-qubit line: the 6 logical qubits sit on the first 6 nodes, the
    // rest are |0> ancillas available as bridges.
    let graph = CouplingGraph::line(12);
    println!("workload: two sparse ZZ…Z strings on a 12-node line device\n");

    let with = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &graph);
    report("tetris (bridging)", &with);

    let without =
        TetrisCompiler::new(TetrisConfig::default().with_bridging(false)).compile(&h, &graph);
    report("tetris (swaps only)", &without);

    assert!(with.circuit.is_hardware_compliant(&graph));
    assert!(without.circuit.is_hardware_compliant(&graph));
    println!(
        "\nbridging saves {} CNOT-equivalents on this workload",
        without.stats.total_cnots() as i64 - with.stats.total_cnots() as i64
    );
}
