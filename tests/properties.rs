//! Randomized property tests over the core invariants: Pauli algebra laws,
//! optimizer soundness, router compliance, compiler compliance, and encoder
//! anticommutation.
//!
//! Originally written against proptest; the workspace builds without
//! external dependencies, so the same properties are exercised with the
//! vendored deterministic RNG (`tetris::pauli::rng`) over a fixed number of
//! seeded cases — reproducible by construction, no shrinking.

use tetris::circuit::{cancel_gates, cancel_gates_commutative, Circuit, Gate};
use tetris::core::{TetrisCompiler, TetrisConfig};
use tetris::pauli::encoder::Encoding;
use tetris::pauli::rng::rngs::StdRng;
use tetris::pauli::rng::{Rng, SeedableRng};
use tetris::pauli::{Hamiltonian, PauliBlock, PauliOp, PauliString, PauliTerm, Phase};
use tetris::router::{route, RouterConfig};
use tetris::sim::Statevector;
use tetris::topology::{CouplingGraph, Layout};

const CASES: u64 = 64;

fn rand_op(rng: &mut StdRng) -> PauliOp {
    match rng.gen_range(0..4usize) {
        0 => PauliOp::I,
        1 => PauliOp::X,
        2 => PauliOp::Y,
        _ => PauliOp::Z,
    }
}

fn rand_string(rng: &mut StdRng, n: usize) -> PauliString {
    PauliString::new((0..n).map(|_| rand_op(rng)).collect())
}

fn rand_gate(rng: &mut StdRng, n: usize) -> Gate {
    let distinct_pair = |rng: &mut StdRng| {
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n);
        while b == a {
            b = rng.gen_range(0..n);
        }
        (a, b)
    };
    match rng.gen_range(0..7usize) {
        0 => Gate::H(rng.gen_range(0..n)),
        1 => Gate::S(rng.gen_range(0..n)),
        2 => Gate::Sdg(rng.gen_range(0..n)),
        3 => Gate::X(rng.gen_range(0..n)),
        4 => Gate::Rz(rng.gen_range(0..n), rng.gen_range(-3.0..3.0)),
        5 => {
            let (a, b) = distinct_pair(rng);
            Gate::Cnot(a, b)
        }
        _ => {
            let (a, b) = distinct_pair(rng);
            Gate::Swap(a, b)
        }
    }
}

fn rand_circuit(rng: &mut StdRng, n: usize, max_len: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..rng.gen_range(0..max_len) {
        c.push(rand_gate(rng, n));
    }
    c
}

#[test]
fn pauli_product_phase_laws() {
    let mut rng = StdRng::seed_from_u64(0xa1);
    for _ in 0..CASES {
        let a = rand_string(&mut rng, 5);
        let b = rand_string(&mut rng, 5);
        let (pab, rab) = a.mul(&b);
        let (pba, rba) = b.mul(&a);
        // Same result string; phases equal iff commuting.
        assert_eq!(&rab, &rba);
        assert_eq!(a.commutes_with(&b), pab == pba);
        // Self-product is the identity with phase 1.
        let (paa, raa) = a.mul(&a);
        assert_eq!(paa, Phase::One);
        assert!(raa.is_identity());
    }
}

#[test]
fn optimizer_preserves_unitary() {
    let mut rng = StdRng::seed_from_u64(0xa2);
    for case in 0..CASES {
        let circuit = rand_circuit(&mut rng, 4, 40);
        let mut optimized = circuit.clone();
        let report = cancel_gates(&mut optimized);
        assert!(optimized.len() <= circuit.len());
        assert_eq!(circuit.len() - optimized.len(), report.removed_total());

        let mut a = Statevector::random_state(4, 1234 + case);
        let mut b = a.clone();
        a.apply_circuit(&circuit);
        b.apply_circuit(&optimized);
        assert!(a.equals_up_to_global_phase(&b, 1e-9));
    }
}

#[test]
fn commutative_optimizer_preserves_unitary() {
    let mut rng = StdRng::seed_from_u64(0xa3);
    for case in 0..CASES {
        let circuit = rand_circuit(&mut rng, 4, 50);
        let mut optimized = circuit.clone();
        let commutative = cancel_gates_commutative(&mut optimized);
        // The commuting pass removes at least as much as the adjacent one.
        let mut adjacent_only = circuit.clone();
        let adjacent = cancel_gates(&mut adjacent_only);
        assert!(commutative.removed_total() >= adjacent.removed_total());

        let mut a = Statevector::random_state(4, 4242 + case);
        let mut b = a.clone();
        a.apply_circuit(&circuit);
        b.apply_circuit(&optimized);
        assert!(a.equals_up_to_global_phase(&b, 1e-9));
    }
}

#[test]
fn optimizer_never_increases_counts() {
    let mut rng = StdRng::seed_from_u64(0xa4);
    for _ in 0..CASES {
        let mut circuit = rand_circuit(&mut rng, 5, 60);
        let before = (circuit.cnot_count(), circuit.single_qubit_count());
        cancel_gates(&mut circuit);
        assert!(circuit.cnot_count() <= before.0);
        assert!(circuit.single_qubit_count() <= before.1);
        // Idempotence.
        let snapshot = circuit.clone();
        let second = cancel_gates(&mut circuit);
        assert_eq!(second.removed_total(), 0);
        assert_eq!(circuit, snapshot);
    }
}

#[test]
fn router_output_is_always_compliant() {
    let mut rng = StdRng::seed_from_u64(0xa5);
    for _ in 0..CASES {
        let logical = rand_circuit(&mut rng, 5, 30);
        let graph = CouplingGraph::grid(2, 3);
        let routed = route(
            &logical,
            &graph,
            Layout::trivial(5, 6),
            &RouterConfig::default(),
        );
        assert!(routed.circuit.is_hardware_compliant(&graph));
        assert!(routed.final_layout.is_consistent());
    }
}

#[test]
fn compiler_output_is_always_compliant() {
    let mut rng = StdRng::seed_from_u64(0xa6);
    for _ in 0..CASES {
        let angle = rng.gen_range(0.05..1.5);
        // Each string becomes a block (commutation within a block is not
        // required by the compiler when blocks are singletons).
        let blocks: Vec<PauliBlock> = (0..rng.gen_range(1..4usize))
            .map(|_| rand_string(&mut rng, 5))
            .filter(|s| !s.is_identity())
            .enumerate()
            .map(|(i, s)| PauliBlock::new(vec![PauliTerm::new(s, 1.0)], angle, format!("b{i}")))
            .collect();
        if blocks.is_empty() {
            continue;
        }
        let h = Hamiltonian::new(5, blocks, "prop");
        let graph = CouplingGraph::grid(3, 3);
        let r = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &graph);
        assert!(r.circuit.is_hardware_compliant(&graph));
        assert!(r.final_layout.is_consistent());
        assert_eq!(
            r.stats.metrics.cnot_count,
            r.stats.logical_cnots() + r.stats.swap_cnots()
        );
    }
}

#[test]
fn single_block_compilation_is_semantically_exact() {
    let mut rng = StdRng::seed_from_u64(0xa7);
    let mut cases = 0;
    while cases < CASES {
        let s = rand_string(&mut rng, 4);
        if s.is_identity() {
            continue;
        }
        cases += 1;
        let angle = rng.gen_range(0.1..1.2);
        let h = Hamiltonian::new(
            4,
            vec![PauliBlock::new(
                vec![PauliTerm::new(s.clone(), 1.0)],
                angle,
                "b",
            )],
            "prop",
        );
        let graph = CouplingGraph::line(6);
        let r = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &graph);
        let input = Statevector::random_state(4, 777 + cases);
        let mut physical = input.embed(&r.initial_layout.as_assignment(), 6);
        physical.apply_circuit(&r.circuit);
        let mut reference = input;
        reference.apply_pauli_exp(&s, angle);
        let expected = reference.embed(&r.final_layout.as_assignment(), 6);
        assert!(physical.equals_up_to_global_phase(&expected, 1e-8));
    }
}

#[test]
fn layout_stays_consistent_under_swap_sequences() {
    let mut rng = StdRng::seed_from_u64(0xa8);
    for _ in 0..CASES {
        let mut layout = Layout::trivial(5, 8);
        for _ in 0..rng.gen_range(0..40usize) {
            let a = rng.gen_range(0..8usize);
            let b = rng.gen_range(0..8usize);
            if a != b {
                layout.swap_phys(a, b);
            }
        }
        assert!(layout.is_consistent());
        // Exactly 5 occupied positions, 3 free.
        let free = (0..8).filter(|&p| layout.is_free(p)).count();
        assert_eq!(free, 3);
    }
}

#[test]
fn qasm_round_trips_gate_counts() {
    use tetris::circuit::qasm::to_qasm;
    let mut rng = StdRng::seed_from_u64(0xa9);
    for _ in 0..CASES {
        let c = rand_circuit(&mut rng, 4, 30);
        let text = to_qasm(&c);
        // One body line per gate, except SWAP which becomes 3 cx lines.
        let body = text
            .lines()
            .filter(|l| {
                !l.starts_with("OPENQASM")
                    && !l.starts_with("include")
                    && !l.starts_with("qreg")
                    && !l.starts_with("creg")
            })
            .count();
        let swaps = c.swap_count();
        assert_eq!(body, c.len() + 2 * swaps);
        // CNOT-equivalent count is preserved textually.
        assert_eq!(text.matches("cx ").count(), c.cnot_count());
    }
}

#[test]
fn qubit_mask_set_algebra_matches_reference_model() {
    use tetris::pauli::QubitMask;

    /// The oracle: plain per-qubit membership flags.
    fn model_of(mask: &QubitMask) -> Vec<bool> {
        (0..mask.n_qubits()).map(|q| mask.contains(q)).collect()
    }
    fn random_pair(rng: &mut StdRng, n: usize) -> (QubitMask, Vec<bool>) {
        let mut mask = QubitMask::empty(n);
        let mut model = vec![false; n];
        for (q, slot) in model.iter_mut().enumerate() {
            if rng.gen_range(0..3usize) == 0 {
                mask.insert(q);
                *slot = true;
            }
        }
        (mask, model)
    }

    // Widths straddling the 64-bit word boundary, plus a 3-word register.
    for n in [63usize, 64, 65, 130] {
        let mut rng = StdRng::seed_from_u64(0xb17 ^ n as u64);
        for _ in 0..CASES {
            let (mut a, mut ma) = random_pair(&mut rng, n);
            let (b, mb) = random_pair(&mut rng, n);

            // Point queries and counts agree with the model.
            assert_eq!(model_of(&a), ma);
            assert_eq!(a.count(), ma.iter().filter(|&&x| x).count());
            assert_eq!(a.is_empty(), ma.iter().all(|&x| !x));

            // Iterator round-trip: member list → rebuilt mask → identical.
            let members: Vec<usize> = a.iter().collect();
            assert!(members.windows(2).all(|w| w[0] < w[1]), "ascending");
            assert_eq!(members, a.to_vec());
            let mut rebuilt = QubitMask::empty(n);
            for &q in &members {
                rebuilt.insert(q);
            }
            assert_eq!(rebuilt, a, "iterate→insert must reproduce the mask");

            // Binary algebra against the model.
            let expect = |f: fn(bool, bool) -> bool| -> Vec<bool> {
                ma.iter().zip(&mb).map(|(&x, &y)| f(x, y)).collect()
            };
            let mut union = a.clone();
            union.union_with(&b);
            assert_eq!(model_of(&union), expect(|x, y| x || y));
            let mut inter = a.clone();
            inter.intersect_with(&b);
            assert_eq!(model_of(&inter), expect(|x, y| x && y));
            let mut diff = a.clone();
            diff.subtract(&b);
            assert_eq!(model_of(&diff), expect(|x, y| x && !y));

            // Derived queries agree with the materialized intersection.
            assert_eq!(a.intersection_count(&b), inter.count());
            assert_eq!(a.intersects(&b), !inter.is_empty());

            // Symmetric difference against the model.
            let mut sym = a.clone();
            sym.xor_with(&b);
            assert_eq!(model_of(&sym), expect(|x, y| x != y));

            // Subset / disjointness against the model.
            assert_eq!(
                a.is_subset_of(&b),
                ma.iter().zip(&mb).all(|(&x, &y)| !x || y)
            );
            assert_eq!(
                a.is_disjoint_from(&b),
                ma.iter().zip(&mb).all(|(&x, &y)| !(x && y))
            );
            assert!(inter.is_subset_of(&a) && inter.is_subset_of(&b));
            assert!(diff.is_disjoint_from(&b));

            // Cursors against the model's scan.
            assert_eq!(a.first(), ma.iter().position(|&x| x));
            for _ in 0..4 {
                let from = rng.gen_range(0..n);
                assert_eq!(
                    a.next_at_or_after(from),
                    (from..n).find(|&q| ma[q]),
                    "next_at_or_after({from}) @ {n}"
                );
            }

            // from_indices / full round-trips.
            assert_eq!(QubitMask::from_indices(n, &members), a);
            assert_eq!(QubitMask::full(n).count(), n);
            assert!(a.is_subset_of(&QubitMask::full(n)));

            // pop_first drains ascending and leaves the empty set.
            let mut drain = a.clone();
            let mut drained = Vec::new();
            while let Some(q) = drain.pop_first() {
                drained.push(q);
            }
            assert_eq!(drained, members);
            assert!(drain.is_empty());

            // Mutation: remove flips the model bit.
            let q = rng.gen_range(0..n);
            a.remove(q);
            ma[q] = false;
            assert_eq!(model_of(&a), ma);

            // Tail-word hygiene: no operation may set bits ≥ n.
            for m in [&a, &union, &inter, &diff, &sym] {
                if let Some(&last) = m.words().last() {
                    let used = n - (m.words().len() - 1) * 64;
                    if used < 64 {
                        assert_eq!(last >> used, 0, "garbage above bit {n}");
                    }
                }
            }
        }
    }
}

#[test]
fn carved_regions_are_connected_disjoint_and_sized() {
    use tetris::pauli::mask::QubitMask;
    use tetris::topology::Region;

    let devices = [
        CouplingGraph::line(32),
        CouplingGraph::grid(6, 6),
        CouplingGraph::heavy_hex(7, 16), // the 130-node service device
        CouplingGraph::sycamore_64(),
        CouplingGraph::heavy_hex_65(),
        CouplingGraph::ring(24),
    ];
    let mut rng = StdRng::seed_from_u64(0xca54e);
    for graph in &devices {
        let n = graph.n_qubits();
        for _ in 0..CASES / 4 {
            // Random request: 2–5 regions totalling at most half the
            // device (a load the carver must always be able to place).
            let k = rng.gen_range(2..6usize);
            let sizes: Vec<usize> = (0..k).map(|_| rng.gen_range(1..=n / 10)).collect();
            let regions = graph
                .carve(&sizes)
                .unwrap_or_else(|| panic!("carve {sizes:?} on {}", graph.name()));
            assert_eq!(regions.len(), sizes.len());
            let mut union = QubitMask::empty(n);
            for (region, &size) in regions.iter().zip(&sizes) {
                assert_eq!(region.len(), size, "requested size on {}", graph.name());
                assert_eq!(region.device_qubits(), n);
                assert!(
                    graph.is_region_connected(region),
                    "disconnected region on {}",
                    graph.name()
                );
                assert!(
                    union.is_disjoint_from(region.mask()),
                    "overlapping regions on {}",
                    graph.name()
                );
                union.union_with(region.mask());
                // Local↔global maps are mutually inverse and in range.
                for local in 0..region.len() {
                    let global = region.to_global(local);
                    assert!(global < n);
                    assert_eq!(region.to_local(global), Some(local));
                }
            }
            assert_eq!(union.count(), sizes.iter().sum::<usize>());
        }
        // The induced subgraph of any carved region has the region's size
        // and only in-region edges (checked through the local index maps).
        let regions = graph.carve(&[n / 8 + 1, n / 8 + 1]).expect("carve pair");
        for region in &regions {
            let sub = graph.induced(region);
            assert_eq!(sub.n_qubits(), region.len());
            for (lu, lv) in sub.edges() {
                assert!(
                    graph.are_adjacent(region.to_global(lu), region.to_global(lv)),
                    "induced edge not in {}",
                    graph.name()
                );
            }
        }
        let _ = Region::new(n, []); // empty regions are representable
    }
}

#[test]
fn offset_layouts_preserve_routing_compliance() {
    // A circuit routed on an induced subgraph, relabeled through the
    // region, must be compliant on the big graph — the relabeling half of
    // the sharding contract, independent of the engine.
    let mut rng = StdRng::seed_from_u64(0x0f5e7);
    let graph = CouplingGraph::heavy_hex(7, 16);
    for _ in 0..CASES / 8 {
        let size = rng.gen_range(4..10usize);
        let region = &graph.carve(&[size]).expect("carve")[0];
        let sub = graph.induced(region);
        let logical = rand_circuit(&mut rng, size.min(4), 20);
        let routed = route(
            &logical,
            &sub,
            Layout::trivial(size.min(4), size),
            &RouterConfig::default(),
        );
        let mut lifted = Circuit::new(graph.n_qubits());
        for gate in routed.circuit.gates() {
            lifted.push(gate.map_qubits(|q| region.to_global(q)));
        }
        assert!(lifted.is_hardware_compliant(&graph));
        let global = routed.final_layout.offset_into(region);
        assert!(global.is_consistent());
        for q in 0..global.n_logical() {
            if let Some(p) = global.phys_of(q) {
                assert!(region.mask().contains(p), "layout escapes the region");
            }
        }
    }
}

#[test]
fn encoders_anticommute() {
    let mut rng = StdRng::seed_from_u64(0xaa);
    for _ in 0..CASES {
        let n = rng.gen_range(2..7usize);
        let k = rng.gen_range(0..2 * n);
        let l = rng.gen_range(0..2 * n);
        if k == l {
            continue;
        }
        for enc in [Encoding::JordanWigner, Encoding::BravyiKitaev] {
            let a = enc.majorana(n, k);
            let b = enc.majorana(n, l);
            assert!(!a.commutes_with(&b), "{enc}: γ{k} vs γ{l}");
        }
    }
}

/// On unit-weight graphs the Dijkstra row computation (taken whenever a
/// graph is built through `from_weighted_edges`) must agree exactly with
/// the BFS rows of the plain constructor, across every device family and
/// the mask-boundary widths 63 / 64 / 65 / 130.
#[test]
fn dijkstra_on_unit_weights_matches_bfs_everywhere() {
    let devices: Vec<CouplingGraph> = vec![
        CouplingGraph::line(63),
        CouplingGraph::ring(63),
        CouplingGraph::grid(8, 8),
        CouplingGraph::sycamore_64(),
        CouplingGraph::heavy_hex_65(),
        CouplingGraph::heavy_hex(7, 16),
    ];
    for bfs in devices {
        let n = bfs.n_qubits();
        assert!(matches!(n, 63 | 64 | 65 | 130), "{}: width {n}", bfs.name());
        assert!(bfs.is_unit_weight());
        let dijkstra = CouplingGraph::from_weighted_edges(
            n,
            bfs.edges().into_iter().map(|(u, v)| (u, v, 1)),
            bfs.name(),
        );
        assert!(!dijkstra.is_unit_weight(), "weighted ctor takes Dijkstra");
        assert_eq!(
            bfs.fingerprint(),
            dijkstra.fingerprint(),
            "all-1 weights are semantically unit"
        );
        for u in 0..n {
            assert_eq!(
                bfs.dist_row(u),
                dijkstra.dist_row(u),
                "{}: row {u} diverges",
                bfs.name()
            );
        }
    }
}

/// Eight workers hammering one shared graph must observe exactly the rows
/// a serial pass computes, and the `OnceLock` slots must dedup concurrent
/// initialization: the shared graph ends with exactly `n` computed rows no
/// matter how the threads interleave.
#[test]
fn lazy_distance_rows_are_thread_safe() {
    use std::sync::Arc;

    let serial = CouplingGraph::heavy_hex(7, 16);
    let n = serial.n_qubits();
    let expected: Vec<Vec<u32>> = (0..n).map(|u| serial.dist_row(u).to_vec()).collect();

    let shared = Arc::new(CouplingGraph::heavy_hex(7, 16));
    let workers: Vec<_> = (0..8u64)
        .map(|w| {
            let g = Arc::clone(&shared);
            let expected = expected.clone();
            std::thread::spawn(move || {
                // Each worker walks the rows from a different offset so
                // the same slot is raced from several threads at once.
                for i in 0..n {
                    let u = (i + w as usize * n / 8) % n;
                    assert_eq!(g.dist_row(u), &expected[u][..], "row {u} (worker {w})");
                }
            })
        })
        .collect();
    for t in workers {
        t.join().expect("worker");
    }
    let (computed, hits) = shared.row_stats();
    assert_eq!(computed, n as u64, "every row computed exactly once");
    // A racer that loses the `OnceLock` init and blocks behind the winner
    // counts as neither hit nor computed, so the in-race hit count is only
    // bounded: 8n calls, n computes, the rest hits or lost races.
    assert!(hits <= 7 * n as u64, "accounting: at most 8n calls total");
    assert_eq!(shared.rows_cached(), n);
    // Once the table is warm, reads are deterministic cache hits.
    for u in 0..n {
        shared.dist_row(u);
    }
    let (computed_after, hits_after) = shared.row_stats();
    assert_eq!(computed_after, n as u64, "warm reads must not recompute");
    assert_eq!(hits_after, hits + n as u64, "warm reads are all hits");
}
