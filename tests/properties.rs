//! Property-based tests (proptest) over the core invariants: Pauli algebra
//! laws, optimizer soundness, router compliance, compiler compliance, and
//! encoder anticommutation.

use proptest::prelude::*;
use tetris::circuit::{cancel_gates, cancel_gates_commutative, Circuit, Gate};
use tetris::core::{TetrisCompiler, TetrisConfig};
use tetris::pauli::encoder::Encoding;
use tetris::pauli::{Hamiltonian, PauliBlock, PauliOp, PauliString, PauliTerm, Phase};
use tetris::router::{route, RouterConfig};
use tetris::sim::Statevector;
use tetris::topology::{CouplingGraph, Layout};

fn arb_pauli_op() -> impl Strategy<Value = PauliOp> {
    prop_oneof![
        Just(PauliOp::I),
        Just(PauliOp::X),
        Just(PauliOp::Y),
        Just(PauliOp::Z),
    ]
}

fn arb_string(n: usize) -> impl Strategy<Value = PauliString> {
    prop::collection::vec(arb_pauli_op(), n).prop_map(PauliString::new)
}

fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let q2 = (0..n, 0..n).prop_filter("distinct", |(a, b)| a != b);
    prop_oneof![
        q.clone().prop_map(Gate::H),
        q.clone().prop_map(Gate::S),
        q.clone().prop_map(Gate::Sdg),
        q.clone().prop_map(Gate::X),
        (q, -3.0f64..3.0).prop_map(|(a, t)| Gate::Rz(a, t)),
        q2.clone().prop_map(|(a, b)| Gate::Cnot(a, b)),
        q2.prop_map(|(a, b)| Gate::Swap(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pauli_product_phase_laws(a in arb_string(5), b in arb_string(5)) {
        let (pab, rab) = a.mul(&b);
        let (pba, rba) = b.mul(&a);
        // Same result string; phases equal iff commuting.
        prop_assert_eq!(&rab, &rba);
        prop_assert_eq!(a.commutes_with(&b), pab == pba);
        // Self-product is the identity with phase 1.
        let (paa, raa) = a.mul(&a);
        prop_assert_eq!(paa, Phase::One);
        prop_assert!(raa.is_identity());
    }

    #[test]
    fn optimizer_preserves_unitary(gates in prop::collection::vec(arb_gate(4), 0..40)) {
        let mut circuit = Circuit::new(4);
        for g in &gates {
            circuit.push(*g);
        }
        let mut optimized = circuit.clone();
        let report = cancel_gates(&mut optimized);
        prop_assert!(optimized.len() <= circuit.len());
        prop_assert_eq!(circuit.len() - optimized.len(), report.removed_total());

        let mut a = Statevector::random_state(4, 1234);
        let mut b = a.clone();
        a.apply_circuit(&circuit);
        b.apply_circuit(&optimized);
        prop_assert!(a.equals_up_to_global_phase(&b, 1e-9));
    }

    #[test]
    fn commutative_optimizer_preserves_unitary(
        gates in prop::collection::vec(arb_gate(4), 0..50),
    ) {
        let mut circuit = Circuit::new(4);
        for g in &gates {
            circuit.push(*g);
        }
        let mut optimized = circuit.clone();
        let commutative = cancel_gates_commutative(&mut optimized);
        // The commuting pass removes at least as much as the adjacent one.
        let mut adjacent_only = circuit.clone();
        let adjacent = cancel_gates(&mut adjacent_only);
        prop_assert!(commutative.removed_total() >= adjacent.removed_total());

        let mut a = Statevector::random_state(4, 4242);
        let mut b = a.clone();
        a.apply_circuit(&circuit);
        b.apply_circuit(&optimized);
        prop_assert!(a.equals_up_to_global_phase(&b, 1e-9));
    }

    #[test]
    fn optimizer_never_increases_counts(gates in prop::collection::vec(arb_gate(5), 0..60)) {
        let mut circuit = Circuit::new(5);
        for g in &gates {
            circuit.push(*g);
        }
        let before = (circuit.cnot_count(), circuit.single_qubit_count());
        cancel_gates(&mut circuit);
        prop_assert!(circuit.cnot_count() <= before.0);
        prop_assert!(circuit.single_qubit_count() <= before.1);
        // Idempotence.
        let snapshot = circuit.clone();
        let second = cancel_gates(&mut circuit);
        prop_assert_eq!(second.removed_total(), 0);
        prop_assert_eq!(circuit, snapshot);
    }

    #[test]
    fn router_output_is_always_compliant(gates in prop::collection::vec(arb_gate(5), 0..30)) {
        let mut logical = Circuit::new(5);
        for g in &gates {
            logical.push(*g);
        }
        let graph = CouplingGraph::grid(2, 3);
        let routed = route(&logical, &graph, Layout::trivial(5, 6), &RouterConfig::default());
        prop_assert!(routed.circuit.is_hardware_compliant(&graph));
        prop_assert!(routed.final_layout.is_consistent());
    }

    #[test]
    fn compiler_output_is_always_compliant(
        strings in prop::collection::vec(arb_string(5), 1..4),
        angle in 0.05f64..1.5,
    ) {
        // Each string becomes a block (commutation within a block is not
        // required by the compiler when blocks are singletons).
        let blocks: Vec<PauliBlock> = strings
            .into_iter()
            .filter(|s| !s.is_identity())
            .enumerate()
            .map(|(i, s)| PauliBlock::new(vec![PauliTerm::new(s, 1.0)], angle, format!("b{i}")))
            .collect();
        prop_assume!(!blocks.is_empty());
        let h = Hamiltonian::new(5, blocks, "prop");
        let graph = CouplingGraph::grid(3, 3);
        let r = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &graph);
        prop_assert!(r.circuit.is_hardware_compliant(&graph));
        prop_assert!(r.final_layout.is_consistent());
        prop_assert_eq!(
            r.stats.metrics.cnot_count,
            r.stats.logical_cnots() + r.stats.swap_cnots()
        );
    }

    #[test]
    fn single_block_compilation_is_semantically_exact(
        s in arb_string(4).prop_filter("non-identity", |s| !s.is_identity()),
        angle in 0.1f64..1.2,
    ) {
        let h = Hamiltonian::new(
            4,
            vec![PauliBlock::new(vec![PauliTerm::new(s.clone(), 1.0)], angle, "b")],
            "prop",
        );
        let graph = CouplingGraph::line(6);
        let r = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &graph);
        let input = Statevector::random_state(4, 777);
        let mut physical = input.embed(&r.initial_layout.as_assignment(), 6);
        physical.apply_circuit(&r.circuit);
        let mut reference = input;
        reference.apply_pauli_exp(&s, angle);
        let expected = reference.embed(&r.final_layout.as_assignment(), 6);
        prop_assert!(physical.equals_up_to_global_phase(&expected, 1e-8));
    }

    #[test]
    fn layout_stays_consistent_under_swap_sequences(
        swaps in prop::collection::vec((0usize..8, 0usize..8), 0..40),
    ) {
        let mut layout = Layout::trivial(5, 8);
        for (a, b) in swaps {
            if a != b {
                layout.swap_phys(a, b);
            }
        }
        prop_assert!(layout.is_consistent());
        // Exactly 5 occupied positions, 3 free.
        let free = (0..8).filter(|&p| layout.is_free(p)).count();
        prop_assert_eq!(free, 3);
    }

    #[test]
    fn qasm_round_trips_gate_counts(gates in prop::collection::vec(arb_gate(4), 0..30)) {
        use tetris::circuit::qasm::to_qasm;
        let mut c = Circuit::new(4);
        for g in &gates {
            c.push(*g);
        }
        let text = to_qasm(&c);
        // One body line per gate, except SWAP which becomes 3 cx lines.
        let body = text
            .lines()
            .filter(|l| !l.starts_with("OPENQASM") && !l.starts_with("include") && !l.starts_with("qreg") && !l.starts_with("creg"))
            .count();
        let swaps = c.swap_count();
        prop_assert_eq!(body, c.len() + 2 * swaps);
        // CNOT-equivalent count is preserved textually.
        prop_assert_eq!(text.matches("cx ").count(), c.cnot_count());
    }

    #[test]
    fn encoders_anticommute(n in 2usize..7, k in 0usize..12, l in 0usize..12) {
        prop_assume!(k < 2 * n && l < 2 * n && k != l);
        for enc in [Encoding::JordanWigner, Encoding::BravyiKitaev] {
            let a = enc.majorana(n, k);
            let b = enc.majorana(n, l);
            prop_assert!(!a.commutes_with(&b), "{enc}: γ{k} vs γ{l}");
        }
    }
}
