//! End-to-end semantic equivalence: every compiler in the workspace must
//! produce a physical circuit equal (up to the layout permutation, with
//! ancillas in `|0>`) to the ordered product of `exp(-i θ/2 P)` factors.

use tetris::baselines::{generic, max_cancel, paulihedral, pcoast_like, qaoa_2qan};
use tetris::circuit::{Circuit, Gate};
use tetris::core::{TetrisCompiler, TetrisConfig};
use tetris::pauli::encoder::Encoding;
use tetris::pauli::fermion::double_excitation;
use tetris::pauli::qaoa::{maxcut_hamiltonian, Graph};
use tetris::pauli::{Hamiltonian, PauliBlock};
use tetris::sim::Statevector;
use tetris::topology::CouplingGraph;

/// A non-trivial product input state on the logical register.
fn prepared_input(n: usize) -> Statevector {
    let mut sv = Statevector::zero_state(n);
    let mut prep = Circuit::new(n);
    for q in 0..n {
        prep.push(Gate::H(q));
        prep.push(Gate::Rz(q, 0.17 * (q + 1) as f64));
        if q % 2 == 0 {
            prep.push(Gate::S(q));
        }
    }
    sv.apply_circuit(&prep);
    sv
}

/// Applies the Hamiltonian's exponential product in the order given by
/// `blocks` (with the per-block term order as stored).
fn apply_reference(sv: &mut Statevector, blocks: &[&PauliBlock]) {
    for b in blocks {
        for t in &b.terms {
            sv.apply_pauli_exp(&t.string, b.angle * t.coeff);
        }
    }
}

/// Small UCCSD-like workload: two double excitations on 6 qubits.
fn small_uccsd(encoding: Encoding) -> Hamiltonian {
    let g1 = double_excitation(6, 5, 4, 1, 0);
    let g2 = double_excitation(6, 4, 3, 2, 1);
    let blocks = vec![
        PauliBlock::new(encoding.encode(&g1), 0.31, "d1"),
        PauliBlock::new(encoding.encode(&g2), -0.47, "d2"),
    ];
    Hamiltonian::new(6, blocks, format!("small-{encoding}"))
}

#[test]
fn tetris_matches_reference_on_uccsd_jw() {
    let h = small_uccsd(Encoding::JordanWigner);
    let graph = CouplingGraph::grid(3, 3);
    let result = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &graph);
    assert!(result.circuit.is_hardware_compliant(&graph));

    let input = prepared_input(6);
    let mut physical = input.embed(&result.initial_layout.as_assignment(), 9);
    physical.apply_circuit(&result.circuit);

    // The compiler records the blocks exactly as emitted.
    let mut reference = input;
    apply_reference(
        &mut reference,
        &result.emitted_blocks.iter().collect::<Vec<_>>(),
    );
    let expected = reference.embed(&result.final_layout.as_assignment(), 9);
    assert!(physical.equals_up_to_global_phase(&expected, 1e-8));
}

#[test]
fn tetris_matches_reference_on_uccsd_bk() {
    let h = small_uccsd(Encoding::BravyiKitaev);
    let graph = CouplingGraph::line(8);
    let result = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &graph);
    assert!(result.circuit.is_hardware_compliant(&graph));

    let input = prepared_input(6);
    let mut physical = input.embed(&result.initial_layout.as_assignment(), 8);
    physical.apply_circuit(&result.circuit);

    let mut reference = input;
    apply_reference(
        &mut reference,
        &result.emitted_blocks.iter().collect::<Vec<_>>(),
    );
    let expected = reference.embed(&result.final_layout.as_assignment(), 8);
    assert!(physical.equals_up_to_global_phase(&expected, 1e-8));
}

#[test]
fn qaoa_compilers_agree_with_reference() {
    let g = Graph::random_regular(6, 3, 11);
    let h = maxcut_hamiltonian(&g, "reg3-6");
    let device = CouplingGraph::grid(3, 3);

    // 2QAN: commuting terms may be reordered freely — check the all-zeros
    // probability instead (permutation- and order-invariant for this
    // diagonal cost layer followed by its inverse).
    let two_qan = qaoa_2qan::compile(&h, &device, 3);
    assert!(two_qan.circuit.is_hardware_compliant(&device));
    let mut sv = Statevector::zero_state(9);
    sv.apply_circuit(&two_qan.circuit);
    sv.apply_circuit(&two_qan.circuit.inverse());
    assert!((sv.probability_all_zeros() - 1.0).abs() < 1e-9);

    // Tetris on QAOA: full equivalence via its recorded emission order.
    let result = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &device);
    assert!(result.circuit.is_hardware_compliant(&device));
    let input = prepared_input(6);
    let mut physical = input.embed(&result.initial_layout.as_assignment(), 9);
    physical.apply_circuit(&result.circuit);
    let mut reference = input;
    apply_reference(
        &mut reference,
        &result.emitted_blocks.iter().collect::<Vec<_>>(),
    );
    let expected = reference.embed(&result.final_layout.as_assignment(), 9);
    assert!(physical.equals_up_to_global_phase(&expected, 1e-8));
}

#[test]
fn routed_baselines_preserve_all_zeros_invariant() {
    // For each hardware-oblivious baseline: circuit ∘ inverse must map
    // |0…0> to |0…0> on the device (a strong smoke test that routing and
    // cancellation preserved unitarity and compliance).
    let h = small_uccsd(Encoding::JordanWigner);
    let device = CouplingGraph::ring(9);
    for result in [
        max_cancel::compile(&h, &device),
        pcoast_like::compile(&h, &device),
        generic::compile(&h, &device, generic::OptLevel::Native),
        generic::compile(&h, &device, generic::OptLevel::PostRouteOnly),
        paulihedral::compile(&h, &device, true),
    ] {
        assert!(
            result.circuit.is_hardware_compliant(&device),
            "{}",
            result.name
        );
        let mut sv = Statevector::zero_state(9);
        sv.apply_circuit(&result.circuit);
        sv.apply_circuit(&result.circuit.inverse());
        assert!(
            (sv.probability_all_zeros() - 1.0).abs() < 1e-9,
            "{} broke the RB invariant",
            result.name
        );
    }
}

#[test]
fn p_layer_qaoa_ansatz_is_semantically_exact() {
    use tetris::pauli::qaoa::qaoa_ansatz;
    let g = Graph::random_regular(6, 3, 2);
    let h = qaoa_ansatz(&g, &[0.7, 0.3], &[0.2, 0.9], "p2");
    let device = CouplingGraph::grid(3, 4);
    let result = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &device);
    assert!(result.circuit.is_hardware_compliant(&device));

    let input = prepared_input(6);
    let mut physical = input.embed(&result.initial_layout.as_assignment(), 12);
    physical.apply_circuit(&result.circuit);
    let mut reference = input;
    apply_reference(
        &mut reference,
        &result.emitted_blocks.iter().collect::<Vec<_>>(),
    );
    let expected = reference.embed(&result.final_layout.as_assignment(), 12);
    assert!(physical.equals_up_to_global_phase(&expected, 1e-8));
}

#[test]
fn trotterized_workload_compiles_and_matches_reference() {
    use tetris::pauli::trotter::trotterize;
    let h1 = small_uccsd(Encoding::JordanWigner);
    let h = trotterize(&h1, 2);
    let device = CouplingGraph::grid(3, 3);
    let result = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &device);
    assert!(result.circuit.is_hardware_compliant(&device));
    assert_eq!(result.emitted_blocks.len(), 2 * h1.blocks.len());

    let input = prepared_input(6);
    let mut physical = input.embed(&result.initial_layout.as_assignment(), 9);
    physical.apply_circuit(&result.circuit);
    let mut reference = input;
    apply_reference(
        &mut reference,
        &result.emitted_blocks.iter().collect::<Vec<_>>(),
    );
    let expected = reference.embed(&result.final_layout.as_assignment(), 9);
    assert!(physical.equals_up_to_global_phase(&expected, 1e-8));
}

#[test]
fn disk_cache_hits_are_semantically_identical_to_fresh_compiles() {
    // A result that traveled compile → codec → disk → codec → cache hit
    // must be *semantically* the same circuit, not merely plausible: the
    // served statevector must match the fresh compile's on a non-trivial
    // input, for Tetris and at least two baselines.
    use std::sync::Arc;
    use tetris::engine::{Backend, CompileJob, Engine, EngineConfig};

    let dir = std::env::temp_dir().join(format!("tetris-equiv-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let h = Arc::new(small_uccsd(Encoding::JordanWigner));
    let device = Arc::new(CouplingGraph::grid(3, 3));
    let jobs = || -> Vec<CompileJob> {
        [
            Backend::Tetris(TetrisConfig::default()),
            Backend::PcoastLike,
            Backend::Paulihedral {
                post_optimize: true,
            },
            Backend::MaxCancel,
        ]
        .into_iter()
        .map(|b| CompileJob::new("small-jw", b, h.clone(), device.clone()))
        .collect()
    };

    // Process 1 compiles fresh and persists to disk.
    let fresh = Engine::new(EngineConfig {
        threads: 2,
        cache_capacity: 16,
        cache_dir: Some(dir.clone()),
        cache_max_bytes: None,
    })
    .compile_batch(jobs());
    assert!(fresh.iter().all(|r| !r.cached && r.error.is_none()));

    // Process 2 (fresh engine, same directory) is served from disk.
    let engine = Engine::new(EngineConfig {
        threads: 2,
        cache_capacity: 16,
        cache_dir: Some(dir.clone()),
        cache_max_bytes: None,
    });
    let served = engine.compile_batch(jobs());
    assert!(
        served.iter().all(|r| r.cached),
        "second process must be disk-served"
    );
    assert_eq!(engine.cache_stats().disk_hits, 4);

    let input = prepared_input(9);
    for (f, s) in fresh.iter().zip(&served) {
        assert_eq!(
            f.output.stats_digest(),
            s.output.stats_digest(),
            "{}: digest changed across the disk",
            f.compiler
        );
        assert!(
            s.output.circuit.is_hardware_compliant(&device),
            "{}: served circuit must stay routable",
            s.compiler
        );
        // The statevector oracle: fresh and served circuits act
        // identically on a non-trivial 9-qubit input state.
        let mut a = input.clone();
        a.apply_circuit(&f.output.circuit);
        let mut b = input.clone();
        b.apply_circuit(&s.output.circuit);
        assert!(
            a.equals_up_to_global_phase(&b, 1e-12),
            "{}: cache-served circuit diverges from the fresh compile",
            s.compiler
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_batch_is_statevector_equivalent_to_whole_chip_compiles() {
    // The sharding contract, end to end: a batch of 4 small workloads
    // carved onto disjoint regions of one 12-qubit device must produce
    // per-job circuits semantically identical to whole-chip compiles of
    // the same jobs, and the merged circuit must equal the tensor product
    // of the per-job evolutions. Every job uses pairwise-commuting blocks
    // (XXX vs ZZI anticommute at two sites), so the emitted exponential
    // product is order-invariant and the reference is well defined
    // without access to the compiler's emission order.
    use std::sync::Arc;
    use tetris::engine::{Backend, CompileJob, Engine, EngineConfig, ShardConfig, SlackPolicy};
    use tetris::pauli::mask::QubitMask;
    use tetris::pauli::{PauliString, PauliTerm};

    let device = Arc::new(CouplingGraph::grid(3, 4));
    let angles = [(0.31, -0.47), (0.52, 0.23), (-0.18, 0.71), (0.44, -0.29)];
    let jobs: Vec<CompileJob> = angles
        .iter()
        .enumerate()
        .map(|(k, &(a, b))| {
            let blocks = vec![
                PauliBlock::new(vec![PauliTerm::new("XXX".parse().unwrap(), 1.0)], a, "x"),
                PauliBlock::new(vec![PauliTerm::new("ZZI".parse().unwrap(), 1.0)], b, "z"),
            ];
            CompileJob::new(
                format!("shardjob{k}"),
                Backend::Tetris(TetrisConfig::default()),
                Arc::new(Hamiltonian::new(3, blocks, format!("shardjob{k}"))),
                device.clone(),
            )
        })
        .collect();

    let engine = Engine::new(EngineConfig {
        threads: 2,
        cache_capacity: 64,
        cache_dir: None,
        cache_max_bytes: None,
    });
    // 4 × 3 qubits fill the 12-qubit grid exactly — no slack to grant.
    let sharded = engine.compile_batch_sharded(
        jobs.clone(),
        &ShardConfig {
            slack: SlackPolicy::Fixed(0),
        },
    );
    assert!(sharded.results.iter().all(|r| r.error.is_none()));
    assert!(sharded.shards[0].plan.leftover.is_empty());
    let whole = engine.compile_batch(jobs);
    assert!(whole.iter().all(|r| r.error.is_none()));

    // The logical evolution of job k on its 3 qubits (order-invariant).
    let logical_state = |k: usize| -> Statevector {
        let mut sv = Statevector::zero_state(3);
        let (a, b) = angles[k];
        sv.apply_pauli_exp(&"XXX".parse::<PauliString>().unwrap(), a);
        sv.apply_pauli_exp(&"ZZI".parse::<PauliString>().unwrap(), b);
        sv
    };

    let mut union = QubitMask::empty(12);
    for (k, (s, w)) in sharded.results.iter().zip(&whole).enumerate() {
        let expected = logical_state(k);
        // All-zeros input: the logical register is |000⟩ under any
        // placement, so no initial layout is needed — only the final one.
        for (label, result) in [("sharded", s), ("whole-chip", w)] {
            let layout = result.output.final_layout.as_ref().expect("layout");
            let mut physical = Statevector::zero_state(12);
            physical.apply_circuit(&result.output.circuit);
            let embedded = expected.embed(&layout.as_assignment(), 12);
            assert!(
                physical.equals_up_to_global_phase(&embedded, 1e-9),
                "job {k} ({label}) diverges from the reference evolution"
            );
        }
        // Disjointness of the merged placements, via masks.
        let region = s.region.as_ref().expect("sharded job placed");
        assert!(
            union.is_disjoint_from(region.mask()),
            "job {k} overlaps an earlier region"
        );
        union.union_with(region.mask());
    }
    assert_eq!(union.count(), 12, "regions tile the whole device");

    // The merged artifact: one circuit running all four jobs at once must
    // equal the tensor product of the per-job evolutions (logical qubits
    // renumbered with per-job offsets, embedded under the merged layout).
    let merged = sharded.shards[0].merged.as_ref().expect("merged");
    let mut physical = Statevector::zero_state(12);
    physical.apply_circuit(&merged.circuit);
    let mut reference = Statevector::zero_state(12);
    for (k, &(a, b)) in angles.iter().enumerate() {
        let pad = |core: &str| -> PauliString {
            let mut s = "I".repeat(3 * k);
            s.push_str(core);
            s.push_str(&"I".repeat(12 - 3 * k - 3));
            s.parse().unwrap()
        };
        reference.apply_pauli_exp(&pad("XXX"), a);
        reference.apply_pauli_exp(&pad("ZZI"), b);
    }
    let layout = merged.final_layout.as_ref().expect("merged layout");
    let embedded = reference.embed(&layout.as_assignment(), 12);
    assert!(
        physical.equals_up_to_global_phase(&embedded, 1e-9),
        "merged circuit diverges from the tensor-product reference"
    );
}

#[test]
fn defragmented_wide_job_is_statevector_exact() {
    // The resident-region defragmenter, end to end: four 3-qubit tiles
    // fill the 12-qubit chip and stay resident; a following 9-qubit job
    // has no compatible region and no room to carve, so the scheduler
    // must release the idle tiles, re-carve, and complete the job — and
    // the compiled circuit must be semantically exact, not merely
    // well-formed. Blocks commute (XXX…X vs ZZI…I anticommute at two
    // sites), so the reference exponential product is order-invariant.
    use std::sync::Arc;
    use tetris::engine::{Backend, CompileJob, Engine, EngineConfig, RegionScheduler};
    use tetris::pauli::{PauliString, PauliTerm};

    let device = Arc::new(CouplingGraph::grid(3, 4));
    let job = |name: String, strings: [&str; 2], a: f64, b: f64| -> CompileJob {
        let n = strings[0].len();
        let blocks = vec![
            PauliBlock::new(
                vec![PauliTerm::new(strings[0].parse().unwrap(), 1.0)],
                a,
                "x",
            ),
            PauliBlock::new(
                vec![PauliTerm::new(strings[1].parse().unwrap(), 1.0)],
                b,
                "z",
            ),
        ];
        CompileJob::new(
            name.clone(),
            Backend::Tetris(TetrisConfig::default()),
            Arc::new(Hamiltonian::new(n, blocks, name)),
            device.clone(),
        )
    };

    let engine = Engine::new(EngineConfig {
        threads: 2,
        cache_capacity: 64,
        cache_dir: None,
        cache_max_bytes: None,
    });
    let scheduler = RegionScheduler::with_default_config();

    // Fragment the chip: the four tiles cover all 12 qubits and their
    // regions stay resident after the batch completes.
    let tiles: Vec<CompileJob> = (0..4)
        .map(|k| {
            job(
                format!("tile{k}"),
                ["XXX", "ZZI"],
                0.2 + 0.11 * k as f64,
                -0.3 + 0.07 * k as f64,
            )
        })
        .collect();
    let tiled = scheduler.schedule_batch(&engine, tiles);
    assert!(tiled.results.iter().all(|r| r.error.is_none()));
    assert_eq!(tiled.report.carves_performed, 4);

    // The starving wide job: nothing matches, nothing fits — only the
    // defragmenter can place it.
    let (a, b) = (0.37, -0.21);
    let wide = scheduler.schedule_batch(
        &engine,
        vec![job("wide".into(), ["XXXXXXXXX", "ZZIIIIIII"], a, b)],
    );
    let result = &wide.results[0];
    assert!(result.error.is_none(), "{:?}", result.error);
    assert_eq!(wide.report.defrags, 1, "the defragmenter had to run");
    assert_eq!(
        wide.report.leftover, 0,
        "placed on a region, not whole-chip"
    );
    assert_eq!(result.region.as_ref().expect("placed").len(), 9);

    // The statevector oracle on the relabeled global circuit.
    let layout = result.output.final_layout.as_ref().expect("layout");
    let mut physical = Statevector::zero_state(12);
    physical.apply_circuit(&result.output.circuit);
    let mut logical = Statevector::zero_state(9);
    logical.apply_pauli_exp(&"XXXXXXXXX".parse::<PauliString>().unwrap(), a);
    logical.apply_pauli_exp(&"ZZIIIIIII".parse::<PauliString>().unwrap(), b);
    let embedded = logical.embed(&layout.as_assignment(), 12);
    assert!(
        physical.equals_up_to_global_phase(&embedded, 1e-9),
        "defragmented job diverges from the reference evolution"
    );
}

#[test]
fn bridging_keeps_ancillas_clean() {
    // Compile a sparse workload on a device with many free qubits; then
    // explicitly Reset every free physical qubit at the end — the
    // statevector oracle panics if any ancilla is left out of |0>.
    let h = small_uccsd(Encoding::JordanWigner);
    let device = CouplingGraph::grid(3, 4);
    let result = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &device);
    let mut sv = Statevector::zero_state(12);
    sv.apply_circuit(&result.circuit);
    for p in 0..12 {
        if result.final_layout.logical_at(p).is_none() {
            sv.apply_gate(&Gate::Reset(p)); // panics if not |0>
        }
    }
}

/// Noise-aware acceptance: a calibration that marks one central coupling
/// hot must steer the weighted router around it — the compiled circuit
/// accumulates strictly less summed edge error than the unweighted compile
/// of the same workload — without giving up semantic exactness.
#[test]
fn weighted_compile_routes_around_hot_edge_and_stays_exact() {
    use tetris::pauli::uccsd::synthetic_ucc;
    use tetris::topology::CalibrationMap;

    // Dense enough that SABRE actually inserts swaps (the small 2-block
    // UCCSD compiles swap-free on a 3x3 grid, where weights are moot).
    let h = synthetic_ucc(6, Encoding::JordanWigner, 1);
    let clean = CouplingGraph::grid(3, 3);

    // One terrible coupling in the middle of the grid; everything else is
    // near-perfect, so every crossing of (4,5) dominates the error sum.
    let mut cal = CalibrationMap::uniform(clean.n_qubits(), 0.001);
    cal.set_edge_error(4, 5, 0.5);
    let noisy = clean.with_calibration(&cal);
    assert!(!noisy.is_unit_weight());
    assert_eq!(noisy.edges(), clean.edges(), "wiring is unchanged");

    let config = TetrisConfig::default();
    let unweighted = TetrisCompiler::new(config).compile(&h, &clean);
    let weighted = TetrisCompiler::new(config).compile(&h, &noisy);
    assert!(weighted.circuit.is_hardware_compliant(&clean));

    // Summed calibration error over every physical CNOT (SWAP = 3 CNOTs).
    let edge_error_sum = |c: &Circuit| -> f64 {
        c.gates()
            .iter()
            .filter_map(|g| match *g {
                Gate::Cnot(u, v) => Some(cal.edge_error(u, v)),
                Gate::Swap(u, v) => Some(3.0 * cal.edge_error(u, v)),
                _ => None,
            })
            .sum()
    };
    let clean_sum = edge_error_sum(&unweighted.circuit);
    let noisy_sum = edge_error_sum(&weighted.circuit);
    assert!(
        noisy_sum < clean_sum,
        "weighted routing must lower the summed edge error: \
         weighted {noisy_sum:.4} vs unweighted {clean_sum:.4}"
    );

    // Avoiding the hot edge must not change the semantics.
    let input = prepared_input(6);
    let mut physical = input.embed(&weighted.initial_layout.as_assignment(), 9);
    physical.apply_circuit(&weighted.circuit);
    let mut reference = input;
    apply_reference(
        &mut reference,
        &weighted.emitted_blocks.iter().collect::<Vec<_>>(),
    );
    let expected = reference.embed(&weighted.final_layout.as_assignment(), 9);
    assert!(physical.equals_up_to_global_phase(&expected, 1e-8));
}
