//! Golden parity tests for the scheduler and router.
//!
//! The bitplane-native refactor (masks through clustering, scheduling,
//! synthesis and SABRE) is a pure representation change: every routed or
//! compiled circuit must stay bit-identical to the pre-refactor output.
//! The constants below are [`Fingerprint64`] digests of the exact gate
//! streams (and final layouts) produced by the `Vec<usize>`/`Vec<bool>`
//! implementation, captured immediately before the refactor. Any change —
//! a different SWAP choice, a reordered emission, a perturbed f64 score
//! sum — moves a digest.
//!
//! Widths deliberately straddle the 64-bit word boundary (63/64/65) and
//! cover a two-word register (130), the layouts most likely to expose a
//! packed-set indexing bug.

use tetris::circuit::{Circuit, Gate};
use tetris::core::{TetrisCompiler, TetrisConfig};
use tetris::pauli::fingerprint::Fingerprint64;
use tetris::pauli::qaoa::{maxcut_hamiltonian, Graph};
use tetris::pauli::rng::rngs::StdRng;
use tetris::pauli::rng::{Rng, SeedableRng};
use tetris::pauli::uccsd::synthetic_ucc;
use tetris::pauli::{encoder::Encoding, Hamiltonian, PauliBlock, PauliTerm};
use tetris::router::{route, RouterConfig};
use tetris::topology::{CouplingGraph, Layout};

/// A stable digest of a gate stream: gate kind tag, operands, and the IEEE
/// bit pattern of any angle. `Fingerprint64` is the workspace's
/// release-stable FNV-1a hasher, so these goldens survive toolchain bumps.
fn circuit_digest(c: &Circuit) -> u64 {
    let mut h = Fingerprint64::new();
    h.write_usize(c.n_qubits());
    h.write_usize(c.len());
    for g in c.gates() {
        match *g {
            Gate::H(q) => {
                h.write_u8(b'H');
                h.write_usize(q);
            }
            Gate::S(q) => {
                h.write_u8(b'S');
                h.write_usize(q);
            }
            Gate::Sdg(q) => {
                h.write_u8(b'D');
                h.write_usize(q);
            }
            Gate::X(q) => {
                h.write_u8(b'X');
                h.write_usize(q);
            }
            Gate::Rz(q, theta) => {
                h.write_u8(b'R');
                h.write_usize(q);
                h.write_f64(theta);
            }
            Gate::Cnot(a, b) => {
                h.write_u8(b'C');
                h.write_usize(a);
                h.write_usize(b);
            }
            Gate::Swap(a, b) => {
                h.write_u8(b'W');
                h.write_usize(a);
                h.write_usize(b);
            }
            Gate::Measure(q) => {
                h.write_u8(b'M');
                h.write_usize(q);
            }
            Gate::Reset(q) => {
                h.write_u8(b'Z');
                h.write_usize(q);
            }
        }
    }
    h.finish()
}

fn layout_digest(l: &Layout) -> u64 {
    let mut h = Fingerprint64::new();
    for p in l.as_assignment() {
        h.write_usize(p);
    }
    h.finish()
}

/// Seeded random logical circuit, mirroring the router's own test
/// generator (H/Rz/S/CNOT mix).
fn random_logical(n: usize, len: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..len {
        match rng.gen_range(0..5) {
            0 => c.push(Gate::H(rng.gen_range(0..n))),
            1 => c.push(Gate::Rz(rng.gen_range(0..n), rng.gen_range(-1.0..1.0))),
            2 => c.push(Gate::S(rng.gen_range(0..n))),
            _ => {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                c.push(Gate::Cnot(a, b));
            }
        }
    }
    c
}

/// One routed point: (circuit digest, final-layout digest, swap count).
fn routed_point(n_log: usize, len: usize, seed: u64, graph: &CouplingGraph) -> (u64, u64, usize) {
    let logical = random_logical(n_log, len, seed);
    let r = route(
        &logical,
        graph,
        Layout::trivial(n_log, graph.n_qubits()),
        &RouterConfig::default(),
    );
    assert!(r.circuit.is_hardware_compliant(graph));
    (
        circuit_digest(&r.circuit),
        layout_digest(&r.final_layout),
        r.swap_count,
    )
}

/// The router golden table: device width covers word-straddling registers.
/// Columns: (logical qubits, gates, seed, device, expected digests).
fn router_cases() -> Vec<(usize, usize, u64, CouplingGraph)> {
    vec![
        (24, 160, 11, CouplingGraph::ring(63)),
        (32, 200, 12, CouplingGraph::grid(8, 8)), // 64 phys
        (40, 240, 13, CouplingGraph::heavy_hex_65()), // 65 phys
        (48, 240, 14, CouplingGraph::line(130)),
        (10, 400, 3, CouplingGraph::heavy_hex_65()),
    ]
}

const ROUTER_GOLDENS: [(u64, u64, usize); 5] = [
    (0x6597b56202cbc566, 0xec9cf2fac49e2c85, 367),
    (0xe2c9515ca63cad7c, 0xad450d31c55f7985, 165),
    (0xb60a914fcee10f05, 0xd198e53c2b06c574, 284),
    (0xc9ec480f7dd968d6, 0xec77d73c949fc345, 884),
    (0xdcedce5ef90e1420, 0xf064b9168a6a1f04, 259),
];

#[test]
fn router_outputs_match_pre_refactor_goldens() {
    for ((n, len, seed, graph), expected) in router_cases().into_iter().zip(ROUTER_GOLDENS) {
        let got = routed_point(n, len, seed, &graph);
        assert_eq!(
            got,
            expected,
            "routed circuit diverged from the pre-refactor golden \
             (n={n}, len={len}, seed={seed}, device={}q)",
            graph.n_qubits()
        );
    }
}

fn hand_ham(n: usize, blocks: Vec<Vec<(&str, f64)>>) -> Hamiltonian {
    let blocks = blocks
        .into_iter()
        .enumerate()
        .map(|(i, terms)| {
            PauliBlock::new(
                terms
                    .into_iter()
                    .map(|(s, c)| PauliTerm::new(s.parse().unwrap(), c))
                    .collect(),
                0.1 + 0.07 * i as f64,
                format!("b{i}"),
            )
        })
        .collect();
    Hamiltonian::new(n, blocks, "golden")
}

/// One compiled point: (circuit digest, final-layout digest, block order
/// digest). `compile_seconds` is wall-clock and deliberately excluded.
fn compiled_point(h: &Hamiltonian, graph: &CouplingGraph, config: TetrisConfig) -> (u64, u64, u64) {
    let r = TetrisCompiler::new(config).compile(h, graph);
    assert!(r.circuit.is_hardware_compliant(graph));
    let mut bo = Fingerprint64::new();
    for &b in &r.block_order {
        bo.write_usize(b);
    }
    (
        circuit_digest(&r.circuit),
        layout_digest(&r.final_layout),
        bo.finish(),
    )
}

fn compiler_cases() -> Vec<(Hamiltonian, CouplingGraph, TetrisConfig)> {
    vec![
        // Multi-block UCC-shaped workload on the word-boundary device.
        (
            synthetic_ucc(20, Encoding::JordanWigner, 0x5cc ^ 20),
            CouplingGraph::heavy_hex_65(),
            TetrisConfig::default(),
        ),
        // Same workload, no lookahead (InputOrder scheduler path).
        (
            synthetic_ucc(16, Encoding::JordanWigner, 0x5cc ^ 16),
            CouplingGraph::grid(8, 8),
            TetrisConfig::without_lookahead(),
        ),
        // QAOA-shaped → the §V-C bridging pass.
        (
            maxcut_hamiltonian(&Graph::random_regular(14, 3, 7), "golden-qaoa"),
            CouplingGraph::heavy_hex_65(),
            TetrisConfig::default(),
        ),
        // Hand-built blocks with split + reversal opportunities, no bridging.
        (
            hand_ham(
                6,
                vec![
                    vec![("XZZZZY", 0.5), ("YZZZZX", -0.5)],
                    vec![("IXZZYI", 0.3), ("IYZZXI", -0.3)],
                    vec![("XZZYII", 0.4)],
                ],
            ),
            CouplingGraph::ring(63),
            TetrisConfig::default().with_bridging(false),
        ),
    ]
}

const COMPILER_GOLDENS: [(u64, u64, u64); 4] = [
    (0x3021935d71edd4bd, 0x085a5bd1cffb9720, 0x1ea9f135b7836365),
    (0x4b61621b395879d2, 0x9312e88905955fe0, 0x47b5eeb1c24f5b25),
    (0x54d5f7ba5c341445, 0x36efc6e437d297c6, 0x253673f94039ce31),
    (0xd8f002dc13773cdd, 0x366128df97e50224, 0x00d3a45e1b770966),
];

#[test]
fn compiler_outputs_match_pre_refactor_goldens() {
    for (i, ((h, graph, config), expected)) in compiler_cases()
        .into_iter()
        .zip(COMPILER_GOLDENS)
        .enumerate()
    {
        let got = compiled_point(&h, &graph, config);
        assert_eq!(
            got, expected,
            "compiled circuit diverged from the pre-refactor golden (case {i}: {})",
            h.name
        );
    }
}

/// Regenerates the golden tables: `cargo test --test scheduling_goldens \
/// -- --ignored --nocapture print_goldens`. Only legitimate after an
/// *intentional* algorithmic change, never to paper over a refactor.
#[test]
#[ignore]
fn print_goldens() {
    println!("ROUTER_GOLDENS:");
    for (n, len, seed, graph) in router_cases() {
        let (c, l, s) = routed_point(n, len, seed, &graph);
        println!("    (0x{c:016x}, 0x{l:016x}, {s}),");
    }
    println!("COMPILER_GOLDENS:");
    for (h, graph, config) in compiler_cases() {
        let (c, l, b) = compiled_point(&h, &graph, config);
        println!("    (0x{c:016x}, 0x{l:016x}, 0x{b:016x}),");
    }
}
