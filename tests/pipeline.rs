//! Cross-crate pipeline tests: compile real workloads with every compiler
//! and assert the paper's qualitative results (the "shape" of the
//! evaluation) plus internal stat consistency.

use tetris::baselines::{generic, max_cancel, paulihedral, pcoast_like};
use tetris::core::{TetrisCompiler, TetrisConfig};
use tetris::pauli::encoder::Encoding;
use tetris::pauli::molecules::Molecule;
use tetris::pauli::uccsd::synthetic_ucc;
use tetris::topology::CouplingGraph;

#[test]
fn table1_pauli_string_counts_are_exact() {
    for m in Molecule::ALL {
        assert_eq!(
            m.ansatz().pauli_string_count(),
            m.expected_pauli_strings(),
            "{m}"
        );
    }
}

#[test]
fn lih_shape_tetris_beats_ph_beats_tket() {
    // Fig. 14's ordering on the smallest molecule.
    let h = Molecule::LiH.uccsd_hamiltonian(Encoding::JordanWigner);
    let g = CouplingGraph::heavy_hex_65();
    let tket = generic::compile(&h, &g, generic::OptLevel::Native);
    let ph = paulihedral::compile(&h, &g, true);
    let tetris = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &g);

    assert!(
        tetris.stats.total_cnots() < ph.stats.total_cnots(),
        "tetris {} !< ph {}",
        tetris.stats.total_cnots(),
        ph.stats.total_cnots()
    );
    assert!(
        ph.stats.total_cnots() < tket.stats.total_cnots(),
        "ph {} !< tket {}",
        ph.stats.total_cnots(),
        tket.stats.total_cnots()
    );
}

#[test]
fn fig17_shape_cancel_ratio_ordering() {
    // PH ≤ Tetris ≤ max_cancel for a real molecule.
    let h = Molecule::LiH.uccsd_hamiltonian(Encoding::JordanWigner);
    let g = CouplingGraph::heavy_hex_65();
    let ph = paulihedral::compile(&h, &g, true).stats.cancel_ratio();
    let tetris = TetrisCompiler::new(TetrisConfig::default())
        .compile(&h, &g)
        .stats
        .cancel_ratio();
    let max = max_cancel::max_cancel_ratio(&h);
    assert!(ph <= tetris + 1e-9, "ph {ph:.3} vs tetris {tetris:.3}");
    assert!(tetris <= max + 1e-9, "tetris {tetris:.3} vs max {max:.3}");
    assert!(
        max > 0.4,
        "max_cancel should expose large headroom, got {max:.3}"
    );
}

#[test]
fn fig15b_shape_pcoast_swaps_dominate() {
    let h = Molecule::LiH.uccsd_hamiltonian(Encoding::JordanWigner);
    let g = CouplingGraph::heavy_hex_65();
    let pcoast = pcoast_like::compile(&h, &g);
    let tetris = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &g);
    assert!(pcoast.stats.swap_cnots() > tetris.stats.swap_cnots());
}

#[test]
fn sycamore_keeps_the_tetris_advantage() {
    // §VI-E / Fig. 21: on the denser Sycamore coupling, Tetris still beats
    // Paulihedral on total CNOT count.
    let h = Molecule::LiH.uccsd_hamiltonian(Encoding::JordanWigner);
    let syc = CouplingGraph::sycamore_64();
    let ph = paulihedral::compile(&h, &syc, true);
    let tetris = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &syc);
    assert!(tetris.circuit.is_hardware_compliant(&syc));
    assert!(
        tetris.stats.total_cnots() < ph.stats.total_cnots(),
        "tetris {} !< ph {}",
        tetris.stats.total_cnots(),
        ph.stats.total_cnots()
    );
}

#[test]
fn synthetic_ucc_compiles_and_improves() {
    let h = synthetic_ucc(10, Encoding::JordanWigner, 3);
    let g = CouplingGraph::heavy_hex_65();
    let ph = paulihedral::compile(&h, &g, true);
    let tetris = TetrisCompiler::new(TetrisConfig::default()).compile(&h, &g);
    assert!(tetris.circuit.is_hardware_compliant(&g));
    assert!(tetris.stats.total_cnots() < ph.stats.total_cnots());
}

#[test]
fn stats_identities_hold_for_every_compiler() {
    let h = Molecule::LiH.uccsd_hamiltonian(Encoding::JordanWigner);
    let g = CouplingGraph::heavy_hex_65();
    let results = vec![
        (
            "tetris",
            TetrisCompiler::new(TetrisConfig::default())
                .compile(&h, &g)
                .stats,
        ),
        ("ph", paulihedral::compile(&h, &g, true).stats),
        ("max", max_cancel::compile(&h, &g).stats),
        ("pcoast", pcoast_like::compile(&h, &g).stats),
    ];
    for (name, s) in results {
        assert_eq!(
            s.metrics.cnot_count,
            s.logical_cnots() + s.swap_cnots(),
            "{name}: CNOT breakdown must add up"
        );
        assert!(s.canceled_cnots <= s.emitted_cnots, "{name}");
        assert!(s.swaps_final <= s.swaps_inserted, "{name}");
        assert!(s.compile_seconds >= 0.0, "{name}");
    }
}

#[test]
fn bk_encoding_compiles_with_lower_similarity_gains() {
    // §VI-B: BK still improves over PH, but cancels less than JW (lower
    // inter-string similarity). The gap shows from BeH2 up.
    let g = CouplingGraph::heavy_hex_65();
    let jw = Molecule::BeH2.uccsd_hamiltonian(Encoding::JordanWigner);
    let bk = Molecule::BeH2.uccsd_hamiltonian(Encoding::BravyiKitaev);
    let t_jw = TetrisCompiler::new(TetrisConfig::default()).compile(&jw, &g);
    let t_bk = TetrisCompiler::new(TetrisConfig::default()).compile(&bk, &g);
    assert!(t_bk.circuit.is_hardware_compliant(&g));
    assert!(
        t_jw.stats.cancel_ratio() > t_bk.stats.cancel_ratio(),
        "jw {:.3} vs bk {:.3}",
        t_jw.stats.cancel_ratio(),
        t_bk.stats.cancel_ratio()
    );
    // …and BK-Tetris still beats BK-PH (Table II Bravyi-Kitaev section).
    let ph_bk = paulihedral::compile(&bk, &g, true);
    assert!(
        t_bk.stats.total_cnots() < ph_bk.stats.total_cnots(),
        "tetris-bk {} !< ph-bk {}",
        t_bk.stats.total_cnots(),
        ph_bk.stats.total_cnots()
    );
}
