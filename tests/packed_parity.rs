//! Parity property tests: the bit-packed `PauliString` kernels must agree
//! with the dense one-op-per-site reference (`tetris::pauli::dense`) —
//! operators, phases, ordering, hashing — on random strings, including
//! widths that straddle the 64-bit word boundary (63/64/65) and multi-word
//! registers.
//!
//! Seeded and dependency-free per the workspace convention (no proptest in
//! the offline build); every case is reproducible by construction.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use tetris::pauli::dense::DenseString;
use tetris::pauli::rng::rngs::StdRng;
use tetris::pauli::rng::{Rng, SeedableRng};
use tetris::pauli::{PauliOp, PauliString};

const CASES: usize = 48;

/// Widths chosen to hit sub-word, exact-word, word-straddling and
/// multi-word layouts.
const WIDTHS: [usize; 9] = [1, 2, 5, 16, 63, 64, 65, 128, 200];

fn rand_ops(rng: &mut StdRng, n: usize) -> Vec<PauliOp> {
    (0..n)
        .map(|_| match rng.gen_range(0..4usize) {
            0 => PauliOp::I,
            1 => PauliOp::X,
            2 => PauliOp::Y,
            _ => PauliOp::Z,
        })
        .collect()
}

fn pair(rng: &mut StdRng, n: usize) -> (DenseString, PauliString) {
    let d = DenseString::new(rand_ops(rng, n));
    let p = d.to_packed();
    (d, p)
}

fn hash_of<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

#[test]
fn unary_kernels_match_dense() {
    let mut rng = StdRng::seed_from_u64(0xb1);
    for n in WIDTHS {
        for _ in 0..CASES {
            let (d, p) = pair(&mut rng, n);
            assert_eq!(p.n_qubits(), d.n_qubits());
            assert_eq!(p.weight(), d.weight(), "weight @ {n}");
            assert_eq!(p.is_identity(), d.is_identity(), "is_identity @ {n}");
            assert_eq!(
                p.support().collect::<Vec<_>>(),
                d.support(),
                "support @ {n}"
            );
            for q in 0..n {
                assert_eq!(p.op(q), d.op(q), "op({q}) @ {n}");
            }
            assert_eq!(p.to_ops(), d.ops(), "to_ops @ {n}");
            assert_eq!(
                p.sparse(),
                d.support()
                    .into_iter()
                    .map(|q| (q, d.op(q)))
                    .collect::<Vec<_>>(),
                "sparse @ {n}"
            );
        }
    }
}

#[test]
fn product_matches_dense_ops_and_phase() {
    let mut rng = StdRng::seed_from_u64(0xb2);
    for n in WIDTHS {
        for _ in 0..CASES {
            let (da, pa) = pair(&mut rng, n);
            let (db, pb) = pair(&mut rng, n);
            let (dense_phase, dense_r) = da.mul(&db);
            let (packed_phase, packed_r) = pa.mul(&pb);
            assert_eq!(packed_phase, dense_phase, "phase @ {n}");
            assert_eq!(
                DenseString::from_packed(&packed_r),
                dense_r,
                "product ops @ {n}"
            );
        }
    }
}

#[test]
fn commutation_and_overlap_match_dense() {
    let mut rng = StdRng::seed_from_u64(0xb3);
    for n in WIDTHS {
        for _ in 0..CASES {
            let (da, pa) = pair(&mut rng, n);
            let (db, pb) = pair(&mut rng, n);
            assert_eq!(
                pa.commutes_with(&pb),
                da.commutes_with(&db),
                "commutes @ {n}"
            );
            assert_eq!(
                pa.common_weight(&pb),
                da.common_weight(&db),
                "common_weight @ {n}"
            );
            // Anticommuting-site count against a per-site scan.
            let anti = (0..n)
                .filter(|&q| !da.op(q).commutes_with(db.op(q)))
                .count();
            assert_eq!(pa.anticommuting_sites(&pb), anti, "anti sites @ {n}");
            // Support overlap against materialized supports.
            let overlap = da.support().iter().any(|q| !db.op(*q).is_identity());
            assert_eq!(pa.supports_overlap(&pb), overlap, "overlap @ {n}");
        }
    }
}

#[test]
fn ordering_matches_dense_derive() {
    // DenseString derives Ord on Vec<PauliOp> — exactly the ordering the
    // packed representation must reproduce (including across lengths).
    let mut rng = StdRng::seed_from_u64(0xb4);
    for _ in 0..CASES {
        for &na in &WIDTHS {
            for &nb in &[na, na + 1, 63, 64, 65] {
                let (da, pa) = pair(&mut rng, na);
                let (db, pb) = pair(&mut rng, nb);
                // Slice Ord is elementwise-then-length — the old derive.
                assert_eq!(
                    pa.cmp(&pb),
                    da.ops().cmp(db.ops()),
                    "cmp {na} vs {nb}: {pa} vs {pb}"
                );
            }
        }
    }
}

#[test]
fn near_identical_strings_order_by_single_site() {
    // Adversarial for the word-parallel compare: strings differing at
    // exactly one site, including the last bit of a word and the first bit
    // of the next.
    let mut rng = StdRng::seed_from_u64(0xb5);
    for n in [63usize, 64, 65, 130] {
        for _ in 0..CASES {
            let ops = rand_ops(&mut rng, n);
            let q = rng.gen_range(0..n);
            let mut other = ops.clone();
            other[q] = match other[q] {
                PauliOp::I => PauliOp::X,
                PauliOp::X => PauliOp::Z,
                PauliOp::Z => PauliOp::Y,
                PauliOp::Y => PauliOp::I,
            };
            let a = PauliString::new(ops.clone());
            let b = PauliString::new(other.clone());
            assert_eq!(a.cmp(&b), ops.cmp(&other), "single-site diff @ {q}/{n}");
            assert_ne!(a, b);
        }
    }
}

#[test]
fn hash_agrees_with_eq_across_construction_paths() {
    let mut rng = StdRng::seed_from_u64(0xb6);
    for n in WIDTHS {
        for _ in 0..CASES {
            let ops = rand_ops(&mut rng, n);
            // Three construction paths for the same string.
            let via_new = PauliString::new(ops.clone());
            let via_parse: PauliString = via_new.to_string().parse().unwrap();
            let mut via_set = PauliString::identity(n);
            for (q, &op) in ops.iter().enumerate() {
                via_set.set_op(q, op);
            }
            assert_eq!(via_new, via_parse);
            assert_eq!(via_new, via_set);
            assert_eq!(hash_of(&via_new), hash_of(&via_parse));
            assert_eq!(hash_of(&via_new), hash_of(&via_set));
            // And a mutated copy differs (clearing a site to I via set_op
            // must also clear both planes' bits — stale bits would break
            // Eq/Hash).
            if n > 0 {
                let q = rng.gen_range(0..n);
                let mut mutated = via_new.clone();
                mutated.set_op(
                    q,
                    if ops[q] == PauliOp::I {
                        PauliOp::Y
                    } else {
                        PauliOp::I
                    },
                );
                assert_ne!(mutated, via_new);
                assert_eq!(mutated.op(q).is_identity(), ops[q] != PauliOp::I);
            }
        }
    }
}

#[test]
fn display_parse_round_trip_across_word_boundaries() {
    let mut rng = StdRng::seed_from_u64(0xb7);
    for n in WIDTHS {
        for _ in 0..8 {
            let (d, p) = pair(&mut rng, n);
            let text = p.to_string();
            assert_eq!(text.len(), n);
            assert_eq!(
                text,
                d.ops().iter().map(|o| o.to_char()).collect::<String>()
            );
            assert_eq!(text.parse::<PauliString>().unwrap(), p);
        }
    }
}

#[test]
fn padding_preserves_prefix_and_extends_identity() {
    let mut rng = StdRng::seed_from_u64(0xb8);
    for n in [5usize, 63, 64, 65] {
        for target in [n, n + 1, n + 63, n + 64, n + 65] {
            let (d, p) = pair(&mut rng, n);
            let padded = p.padded_to(target);
            assert_eq!(padded.n_qubits(), target.max(n));
            for q in 0..n {
                assert_eq!(padded.op(q), d.op(q));
            }
            for q in n..padded.n_qubits() {
                assert!(padded.op(q).is_identity());
            }
            assert_eq!(padded.weight(), p.weight());
        }
    }
}
